package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// openWatch subscribes to /v1/watch and returns the response plus a
// channel of decoded feed lines (closed when the stream ends).
func openWatch(t *testing.T, base string, params url.Values) (*http.Response, <-chan WatchLine) {
	t.Helper()
	resp, err := http.Get(base + "/v1/watch?" + params.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch: status %d: %s", resp.StatusCode, body)
	}
	t.Cleanup(func() { resp.Body.Close() })
	ch := make(chan WatchLine, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ln WatchLine
			if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
				return
			}
			ch <- ln
		}
	}()
	return resp, ch
}

func nextLine(t *testing.T, ch <-chan WatchLine) (WatchLine, bool) {
	t.Helper()
	select {
	case ln, ok := <-ch:
		return ln, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a watch line")
	}
	panic("unreachable")
}

// nextEvent skips heartbeats and returns the next reset or delta line.
func nextEvent(t *testing.T, ch <-chan WatchLine) WatchLine {
	t.Helper()
	for {
		ln, ok := nextLine(t, ch)
		if !ok {
			t.Fatal("watch stream closed while waiting for an event")
		}
		if ln.Head == 0 {
			return ln
		}
	}
}

func watchParams(template string, args ...string) url.Values {
	v := url.Values{"template": {template}}
	for _, a := range args {
		v.Add("arg", a)
	}
	return v
}

func TestWatchStreamsDeltas(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{})
	_, ch := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "bart"))

	reset := nextEvent(t, ch)
	if !reset.Reset || reset.Gen == 0 {
		t.Fatalf("first line is not a reset: %+v", reset)
	}
	if !reflect.DeepEqual(reset.Vars, []string{"Y"}) {
		t.Fatalf("vars %v", reset.Vars)
	}
	if !reflect.DeepEqual(reset.Rows, [][]string{{"abe"}, {"homer"}, {"orville"}}) {
		t.Fatalf("reset rows %v", reset.Rows)
	}

	db.Assert("parent", "orville", "zeke")
	delta := nextEvent(t, ch)
	if delta.Reset || !reflect.DeepEqual(delta.Added, [][]string{{"zeke"}}) || len(delta.Removed) != 0 {
		t.Fatalf("delta after assert: %+v", delta)
	}
	if delta.Epoch <= reset.Epoch {
		t.Fatalf("delta epoch %d not past reset epoch %d", delta.Epoch, reset.Epoch)
	}

	db.Retract("parent", "homer", "abe")
	delta = nextEvent(t, ch)
	want := [][]string{{"abe"}, {"orville"}, {"zeke"}}
	if !reflect.DeepEqual(delta.Removed, want) {
		t.Fatalf("delta after cut: %+v, want removed %v", delta, want)
	}
}

// Reconnecting with the heartbeat cursor replays exactly the missed
// deltas — nothing already delivered, nothing skipped.
func TestWatchResumeNoDuplicates(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{})
	resp, ch := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "bart"))

	reset := nextEvent(t, ch)
	db.Assert("parent", "orville", "zeke")
	delta := nextEvent(t, ch)
	if !reflect.DeepEqual(delta.Added, [][]string{{"zeke"}}) {
		t.Fatalf("live delta: %+v", delta)
	}
	cursor, gen := delta.Epoch, reset.Gen
	resp.Body.Close() // client goes away holding (cursor, gen)

	db.Assert("parent", "zeke", "yaya") // missed while disconnected

	params := watchParams("ancestor(?, Y)", "bart")
	params.Set("from", formatUint(cursor))
	params.Set("gen", formatUint(gen))
	_, ch2 := openWatch(t, ts.URL, params)
	ln := nextEvent(t, ch2)
	if ln.Reset {
		t.Fatalf("in-window resume forced a reset: %+v", ln)
	}
	if !reflect.DeepEqual(ln.Added, [][]string{{"yaya"}}) {
		t.Fatalf("resume replayed %+v, want only the missed delta", ln)
	}
	// A caught-up cursor resumes to heartbeats alone.
	params.Set("from", formatUint(ln.Epoch))
	_, ch3 := openWatch(t, ts.URL, params)
	hb, ok := nextLine(t, ch3)
	if !ok || hb.Head != ln.Epoch || hb.Reset || len(hb.Added) != 0 {
		t.Fatalf("caught-up resume: %+v", hb)
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// A rule load recomputes the view and bumps its generation: the open
// stream sees an in-band reset, and a reconnect with the stale cursor
// is refused a delta resume and snapshots instead.
func TestWatchRuleLoadResets(t *testing.T) {
	_, ts, db := newTestServer(t, `
		anc(X, Y) :- parent(X, Y).
		parent(a, b). parent(b, c).
	`, Config{})
	_, ch := openWatch(t, ts.URL, watchParams("anc(a, Y)"))
	reset := nextEvent(t, ch)
	if !reflect.DeepEqual(reset.Rows, [][]string{{"b"}}) {
		t.Fatalf("initial rows %v", reset.Rows)
	}

	if err := db.LoadProgram(`anc(X, Z) :- parent(X, Y), anc(Y, Z).`); err != nil {
		t.Fatal(err)
	}
	ln := nextEvent(t, ch)
	if !ln.Reset || ln.Gen == reset.Gen {
		t.Fatalf("rule load did not reset in-band: %+v", ln)
	}
	if !reflect.DeepEqual(ln.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("post-rule rows %v", ln.Rows)
	}

	params := watchParams("anc(a, Y)")
	params.Set("from", formatUint(reset.Epoch))
	params.Set("gen", formatUint(reset.Gen))
	_, ch2 := openWatch(t, ts.URL, params)
	if ln := nextEvent(t, ch2); !ln.Reset {
		t.Fatalf("stale-generation cursor resumed without a reset: %+v", ln)
	}
}

// Subscribers of the same (template, args) share one live view, and the
// last unsubscribe closes it.
func TestWatchSharedViewRefcount(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{WatchLinger: -1})
	params := watchParams("ancestor(?, Y)", "bart")
	r1, ch1 := openWatch(t, ts.URL, params)
	nextEvent(t, ch1)
	r2, ch2 := openWatch(t, ts.URL, params)
	nextEvent(t, ch2)
	if got := db.Views(); got != 1 {
		t.Fatalf("two subscribers hold %d views, want 1 shared", got)
	}
	// A different binding vector is a different view.
	r3, ch3 := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "lisa"))
	nextEvent(t, ch3)
	if got := db.Views(); got != 2 {
		t.Fatalf("Views = %d, want 2", got)
	}
	r1.Body.Close()
	r2.Body.Close()
	r3.Body.Close()
	waitFor(t, "views to close", func() bool { return db.Views() == 0 })
}

// With a linger window, the last unsubscribe keeps the view warm for a
// reconnect, then the window closes it.
func TestWatchLingerExpires(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{WatchLinger: 600 * time.Millisecond})
	resp, ch := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "bart"))
	nextEvent(t, ch)
	resp.Body.Close()
	waitFor(t, "handler to release its subscription", func() bool {
		select {
		case _, ok := <-ch:
			return !ok
		default:
			return false
		}
	})
	if db.Views() != 1 {
		t.Fatalf("view closed before the linger window; Views = %d", db.Views())
	}
	waitFor(t, "lingering view to expire", func() bool { return db.Views() == 0 })
}

// Watch connections are long-lived and must not occupy in-flight
// limiter slots: with MaxInFlight=1 and open watch + replicate streams,
// queries and mutations still get the one slot.
func TestWatchExemptFromLimiter(t *testing.T) {
	_, ts, _ := newPrimary(t, Config{MaxInFlight: 1})
	_, ch := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "bart"))
	nextEvent(t, ch) // the stream is up and inside its long-poll

	feed, err := http.Get(ts.URL + "/v1/replicate")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Body.Close()
	if feed.StatusCode != http.StatusOK {
		t.Fatalf("replicate: status %d", feed.StatusCode)
	}

	status, qr := queryRows(t, ts.URL, QueryRequest{Query: "ancestor(bart, Y)"})
	if status != http.StatusOK {
		t.Fatalf("query under open streams: status %d, want 200", status)
	}
	if len(qr.Result.Rows) != 3 {
		t.Fatalf("rows %v", qr.Result.Rows)
	}
	if status, _, _ := assertFact(t, ts.URL, "parent", "orville", "zeke"); status != http.StatusOK {
		t.Fatalf("assert under open streams: status %d, want 200", status)
	}
	if delta := nextEvent(t, ch); !reflect.DeepEqual(delta.Added, [][]string{{"zeke"}}) {
		t.Fatalf("watch missed the mutation: %+v", delta)
	}
}

// Draining must wake long-poll watch connections immediately rather
// than holding Shutdown open for a replicate window.
func TestWatchDrainCloses(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{})
	_, ch := openWatch(t, ts.URL, watchParams("ancestor(?, Y)", "bart"))
	nextEvent(t, ch)
	s.SetDraining(true)
	deadline := time.After(3 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // stream ended promptly
			}
		case <-deadline:
			t.Fatal("watch stream survived draining")
		}
	}
}

func TestWatchBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	for _, tc := range []struct {
		name, query string
		want        int
	}{
		{"missing template", "", http.StatusBadRequest},
		{"from without gen", "template=ancestor(%3F,Y)&arg=bart&from=3", http.StatusBadRequest},
		{"malformed from", "template=ancestor(%3F,Y)&arg=bart&from=x&gen=1", http.StatusBadRequest},
		{"bad template", "template=ancestor(", http.StatusBadRequest},
		{"arity mismatch", "template=ancestor(%3F,Y)", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/v1/watch?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// The instrumentation wrapper must propagate Flush to the underlying
// writer — streamed endpoints (watch, replicate) depend on it — and
// must tolerate writers with no flush support.
func TestStatusRecorderFlusherPropagation(t *testing.T) {
	fw := &flushRecorder{ResponseWriter: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: fw, status: http.StatusOK}
	var w http.ResponseWriter = rec
	fl, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not expose http.Flusher")
	}
	fl.Flush()
	if fw.flushes != 1 {
		t.Fatalf("flushes = %d, want 1 forwarded", fw.flushes)
	}
	// No panic when the underlying writer cannot flush.
	bare := &statusRecorder{ResponseWriter: nonFlusher{httptest.NewRecorder()}, status: http.StatusOK}
	bare.Flush()
}

type flushRecorder struct {
	http.ResponseWriter
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// nonFlusher hides the recorder's Flush method.
type nonFlusher struct{ http.ResponseWriter }

// A replica serves the watch feed off its applied WAL tail: deltas
// committed on the primary stream to subscribers of the replica.
func TestWatchOnReplicaTailsPrimary(t *testing.T) {
	_, primary, _ := newPrimary(t, Config{})
	_, replica, rdb := newReplica(t, primary.URL, Config{})

	_, ch := openWatch(t, replica.URL, watchParams("ancestor(?, Y)", "bart"))
	reset := nextEvent(t, ch)
	if !reflect.DeepEqual(reset.Rows, [][]string{{"abe"}, {"homer"}, {"orville"}}) {
		t.Fatalf("replica reset rows %v", reset.Rows)
	}

	status, mr, _ := assertFact(t, primary.URL, "parent", "orville", "zeke")
	if status != http.StatusOK {
		t.Fatalf("primary assert: status %d", status)
	}
	delta := nextEvent(t, ch)
	if !reflect.DeepEqual(delta.Added, [][]string{{"zeke"}}) {
		t.Fatalf("replica watch delta: %+v", delta)
	}
	if delta.Epoch != mr.Epoch {
		t.Fatalf("replica delta epoch %d, primary committed %d", delta.Epoch, mr.Epoch)
	}
	waitFor(t, "replica to reach the primary epoch", func() bool {
		return rdb.FactEpoch() == mr.Epoch
	})
}
