// Package server implements chainlogd's HTTP serving layer over a
// chainlog.DB: a prepared-plan registry with single-flight compilation,
// JSON query/mutation endpoints, per-request deadlines propagated into
// the traversal via context cancellation, MaxNodes-based admission
// control, a bounded in-flight limiter (429 + Retry-After on
// saturation), and Prometheus-style /metrics exposition.
//
// The package contains no evaluation logic — it is a thin, production-
// shaped shell: every answer comes from the same Prepared/RunBatch/Delta
// APIs library callers use, so a served query and a direct DB call are
// interchangeable (the handler tests pin that equivalence).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chainlog"

	"chainlog/internal/metrics"
	"chainlog/internal/wal"
)

// Config tunes a Server. The zero value of every field gets a production
// default; only DB is required.
type Config struct {
	// DB is the database to serve. Required.
	DB *chainlog.DB

	// MaxInFlight bounds concurrently executing /v1/* requests; excess
	// requests are rejected with 429 and a Retry-After header instead of
	// queueing without bound. Default 64.
	MaxInFlight int

	// DefaultTimeout is the per-request evaluation deadline applied when
	// the request names none; MaxTimeout clamps request-supplied
	// deadlines. Defaults 5s and 30s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxNodes is the admission cap on a query's interpretation-graph
	// size: request-supplied max_nodes values are clamped to it and
	// requests naming none inherit it, so no single query can hold a
	// worker on an unbounded traversal. Default 4M nodes; -1 disables
	// the cap.
	MaxNodes int

	// Parallelism is baked into every compiled plan's options
	// (Options.Parallelism). Default 0 (sequential traversal — the
	// zero-allocation warm path; request concurrency supplies the
	// parallelism under load).
	Parallelism int

	// RetryAfter is the Retry-After hint on 429 responses. Default 1s.
	RetryAfter time.Duration

	// Logf receives one line per lifecycle event (boot, drain) and per
	// failed request. Default log.Printf.
	Logf func(format string, args ...any)

	// WAL, when set, makes every committed mutation durable: the record
	// is appended (and fsynced per the log's policy) before the response
	// is sent, and /v1/replicate serves the log to replicas. Nil keeps
	// the in-memory-only behavior.
	WAL *wal.Log

	// Role is "primary" (default: accepts writes, serves the feed) or
	// "replica" (rejects writes with 403 + X-Chainlog-Primary, tails
	// PrimaryURL). POST /v1/promote flips a replica to primary at
	// runtime.
	Role string

	// PrimaryURL is the primary's base URL — where a replica tails from
	// and bootstraps against, and what its 403s advertise to clients.
	// Required for Role "replica".
	PrimaryURL string

	// ReplicateWindow bounds one /v1/replicate long-poll: a caught-up
	// feed connection closes after this long and the replica reconnects.
	// Default 25s.
	ReplicateWindow time.Duration

	// WatchLinger keeps a watched view alive after its last subscriber
	// disconnects, so a client that reconnects within the window resumes
	// from its (from, gen) cursor instead of paying a snapshot reset.
	// Default 1m; negative closes views on the last unsubscribe.
	WatchLinger time.Duration

	// SnapshotBytes is the auto-snapshot threshold: once this many WAL
	// bytes accumulate past the newest snapshot, a snapshot is written
	// in the background and covered segments are truncated. Default
	// 8 MiB; negative disables auto-snapshots.
	SnapshotBytes int64

	// SnapshotFormat selects how WAL snapshots (auto-rotation and
	// bootstrap persistence) are written: "text" (default, the
	// human-readable DumpFacts form) or "binary" (the columnar mmap-able
	// form — smaller and far faster to restore at scale). Recovery
	// auto-detects either, so the setting can change between restarts.
	SnapshotFormat string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 4 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Role == "" {
		c.Role = RolePrimary
	}
	if c.ReplicateWindow == 0 {
		c.ReplicateWindow = 25 * time.Second
	}
	if c.WatchLinger == 0 {
		c.WatchLinger = time.Minute
	}
	if c.SnapshotBytes == 0 {
		c.SnapshotBytes = 8 << 20
	}
	if c.SnapshotFormat == "" {
		c.SnapshotFormat = "text"
	}
	return c
}

// Server is the HTTP serving layer. Create with New, mount Handler on an
// http.Server, and call SetDraining(true) before http.Server.Shutdown so
// load balancers watching /healthz stop routing new traffic.
type Server struct {
	cfg      Config
	db       *chainlog.DB
	registry *planRegistry
	metrics  *metrics.Registry
	sem      chan struct{}
	draining atomic.Bool
	drainCh  chan struct{} // closed on the first SetDraining(true)

	inFlight  *metrics.Gauge
	rejected  *metrics.Counter
	latency   map[string]*metrics.Histogram
	requests  func(endpoint, code string) *metrics.Counter
	mutations *metrics.Counter

	// Replication state (see replication.go). commitMu serializes
	// apply+WAL-append so log order is epoch order; epochMu/epochCh
	// broadcast fact-epoch movement to min-epoch waiters.
	wal          *wal.Log
	replica      atomic.Bool
	commitMu     sync.Mutex
	epochMu      sync.Mutex
	epochCh      chan struct{}
	snapInFlight atomic.Bool
	replMu       sync.Mutex
	replCancel   context.CancelFunc
	replWG       sync.WaitGroup
	replClient   *http.Client
	replHead     atomic.Uint64

	snapshots     *metrics.Counter
	replApplied   *metrics.Counter
	replLag       *metrics.Gauge
	replConnected *metrics.Gauge

	// Watch state (see watch.go): refcounted live views shared across
	// /v1/watch subscribers of the same (template, args).
	watchMu   sync.Mutex
	watches   map[watchKey]*watchEntry
	watchSubs *metrics.Gauge
}

// endpoints names every instrumented route; per-endpoint histograms are
// pre-registered so /metrics exposes the full set from the first scrape.
var endpoints = []string{"query", "assert", "retract", "delta", "explain", "healthz", "metrics",
	"replicate", "snapshot", "status", "promote", "watch"}

// New builds a Server over the database.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	switch cfg.Role {
	case RolePrimary:
	case RoleReplica:
		if cfg.PrimaryURL == "" {
			return nil, errors.New("server: Role \"replica\" requires Config.PrimaryURL")
		}
	default:
		return nil, fmt.Errorf("server: unknown Role %q (want %q or %q)", cfg.Role, RolePrimary, RoleReplica)
	}
	if cfg.PrimaryURL != "" {
		if err := primaryURLValid(cfg.PrimaryURL); err != nil {
			return nil, fmt.Errorf("server: Config.PrimaryURL: %w", err)
		}
	}
	if cfg.SnapshotFormat != "text" && cfg.SnapshotFormat != "binary" {
		return nil, fmt.Errorf("server: unknown SnapshotFormat %q (want \"text\" or \"binary\")", cfg.SnapshotFormat)
	}
	reg := metrics.NewRegistry()
	base := chainlog.Options{Parallelism: cfg.Parallelism}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		registry: newPlanRegistry(cfg.DB, base, reg),
		metrics:  reg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		drainCh:  make(chan struct{}),
		epochCh:  make(chan struct{}),
		wal:      cfg.WAL,
		watches:  make(map[watchKey]*watchEntry),
		// The tailer holds one long-poll connection at a time; no client
		// timeout (the feed window bounds it), ctx cancels on shutdown.
		replClient: &http.Client{},
		inFlight:   reg.Gauge("chainlogd_in_flight_requests", "Requests currently executing.", ""),
		rejected:   reg.Counter("chainlogd_rejected_total", "Requests rejected by the in-flight limiter (HTTP 429).", ""),
		latency:    make(map[string]*metrics.Histogram),
		mutations: reg.Counter("chainlogd_fact_mutations_total",
			"Facts asserted or retracted (net of no-ops) across all mutation endpoints.", ""),
	}
	s.replica.Store(cfg.Role == RoleReplica)
	for _, ep := range endpoints {
		s.latency[ep] = reg.Histogram("chainlogd_request_seconds",
			"Request latency by endpoint.", metrics.Labels("endpoint", ep), nil)
	}
	s.requests = func(endpoint, code string) *metrics.Counter {
		return reg.Counter("chainlogd_requests_total", "Requests served by endpoint and status code.",
			metrics.Labels("endpoint", endpoint, "code", code))
	}
	// DB-level plan cache (behind one-shot "query" bodies) and registry
	// size, read at scrape time.
	reg.GaugeFunc("chainlogd_db_plan_cache_hits", "DB plan cache hits (one-shot query route).", "",
		func() float64 { return float64(cfg.DB.PlanCacheStats().Hits) })
	reg.GaugeFunc("chainlogd_db_plan_cache_misses", "DB plan cache misses (one-shot query route).", "",
		func() float64 { return float64(cfg.DB.PlanCacheStats().Misses) })
	reg.GaugeFunc("chainlogd_plan_registry_entries", "Prepared plans in the serving registry.", "",
		func() float64 { return float64(s.registry.size()) })
	// Epoch exposure: where this node sits in the replication log, read
	// at scrape time.
	reg.GaugeFunc("chainlogd_fact_epoch", "Current fact epoch (replication log sequence number).", "",
		func() float64 { return float64(cfg.DB.FactEpoch()) })
	reg.GaugeFunc("chainlogd_rule_epoch", "Current rule epoch (plan-invalidating mutations).", "",
		func() float64 { return float64(cfg.DB.RuleEpoch()) })
	// Engine-level (not daemon-level) counter, hence the chainlog_ prefix:
	// Auto plans re-costed after cardinality drift or runtime feedback
	// contradicted the cost estimate.
	reg.CounterFunc("chainlog_plan_reoptimizations_total",
		"Plan re-optimizations performed by the cost-based optimizer.", "",
		func() float64 { return float64(cfg.DB.Reoptimizations()) })
	// View maintenance accounting: how often live views absorbed a delta
	// incrementally versus fell back to a full recompute.
	reg.CounterFunc("chainlog_view_maintained_total",
		"Mutations absorbed incrementally by materialized views.", "",
		func() float64 { m, _ := cfg.DB.ViewStats(); return float64(m) })
	reg.CounterFunc("chainlog_view_recomputed_total",
		"Full recomputes of materialized views (rule loads, restores, count underflow).", "",
		func() float64 { _, r := cfg.DB.ViewStats(); return float64(r) })
	s.watchSubs = reg.Gauge("chainlog_watch_subscribers", "Live /v1/watch subscribers.", "")
	s.snapshots = reg.Counter("chainlogd_wal_snapshots_total", "WAL snapshots written (with segment truncation).", "")
	s.replApplied = reg.Counter("chainlogd_replication_applied_total", "Replicated records applied by the tailer.", "")
	s.replLag = reg.Gauge("chainlogd_replication_lag", "Epochs behind the primary's head (replicas; 0 when caught up).", "")
	s.replConnected = reg.Gauge("chainlogd_replication_connected", "1 while the tailer holds a live feed connection.", "")
	if s.wal != nil {
		fsyncHist := reg.Histogram("chainlogd_wal_fsync_seconds", "WAL segment fsync latency.", "",
			[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1})
		s.wal.SetFsyncObserver(func(d time.Duration) { fsyncHist.Observe(d.Seconds()) })
		reg.GaugeFunc("chainlogd_wal_last_epoch", "Epoch of the newest WAL record.", "",
			func() float64 { return float64(s.wal.LastEpoch()) })
		reg.GaugeFunc("chainlogd_wal_segments", "Live WAL segment files.", "",
			func() float64 { return float64(s.wal.Segments()) })
		reg.GaugeFunc("chainlogd_wal_bytes_since_snapshot", "WAL bytes appended past the newest snapshot.", "",
			func() float64 { return float64(s.wal.SizeSinceSnapshot()) })
	}
	return s, nil
}

// Metrics exposes the server's metrics registry (for tests and embedded
// use).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// SetDraining flips the drain flag: /healthz answers 503 so load
// balancers take the instance out of rotation while in-flight requests
// finish under http.Server.Shutdown. The first transition to draining
// also wakes long-poll feed connections so Shutdown does not wait a
// whole replicate window for them.
func (s *Server) SetDraining(v bool) {
	if v && s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
		return
	}
	s.draining.Store(v)
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", s.instrument("query", true, s.handleQuery))
	mux.Handle("POST /v1/assert", s.instrument("assert", true, s.handleAssert))
	mux.Handle("POST /v1/retract", s.instrument("retract", true, s.handleRetract))
	mux.Handle("POST /v1/delta", s.instrument("delta", true, s.handleDelta))
	mux.Handle("GET /v1/explain", s.instrument("explain", true, s.handleExplain))
	mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	// Replication routes run outside the in-flight limiter: the feed is
	// a long-lived connection, and status/snapshot must answer even on a
	// saturated node (that is when the operator needs them).
	mux.Handle("GET /v1/replicate", s.instrument("replicate", false, s.handleReplicate))
	// The watch feed is likewise a long-lived connection: counting it
	// against MaxInFlight would let a handful of idle subscribers starve
	// the query path.
	mux.Handle("GET /v1/watch", s.instrument("watch", false, s.handleWatch))
	mux.Handle("GET /v1/snapshot", s.instrument("snapshot", false, s.handleSnapshot))
	mux.Handle("GET /v1/status", s.instrument("status", false, s.handleStatus))
	mux.Handle("POST /v1/promote", s.instrument("promote", false, s.handlePromote))
	return mux
}

// statusRecorder captures the status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streamed endpoints (the
// replicate feed) work through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the limiter (when limited), the
// in-flight gauge, and per-endpoint latency/request-count metrics.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	hist := s.latency[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rejected.Inc()
				s.requests(endpoint, "429").Inc()
				w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
				writeError(w, http.StatusTooManyRequests, "server at capacity")
				return
			}
		}
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		hist.Observe(time.Since(start).Seconds())
		s.requests(endpoint, strconv.Itoa(rec.status)).Inc()
	})
}

// requestContext derives the evaluation context: the request-supplied
// timeout_ms clamped to MaxTimeout, DefaultTimeout when absent. The
// returned context also carries the client-disconnect cancellation of
// r.Context.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// admitMaxNodes resolves a request's max_nodes against the server cap:
// absent inherits the cap, larger clamps to it. The result lands in
// Options.MaxNodes, so an admitted query cannot build an interpretation
// graph beyond what the operator allowed.
func (s *Server) admitMaxNodes(requested int) int {
	limit := s.cfg.MaxNodes
	if limit < 0 {
		limit = 0 // unlimited
	}
	switch {
	case requested <= 0:
		return limit
	case limit > 0 && requested > limit:
		return limit
	default:
		return requested
	}
}

// httpStatusFor maps an evaluation error to a response status:
// deadline/cancellation to 504 (the request's deadline fired) or 499
// (the client went away), the MaxNodes admission bound to 422, and
// everything else — parse errors, unknown strategies, bad templates —
// to 400 (the request was at fault, not the server).
func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, chainlog.ErrMaxNodes):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// ListenAndServe runs the server at addr until ctx is canceled, then
// drains: /healthz flips to 503 and http.Server.Shutdown waits up to
// drainTimeout for in-flight requests. It returns nil on a clean drain —
// the SIGTERM path cmd/chainlogd and the e2e harness assert on.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := &http.Server{
		Addr:    addr,
		Handler: s.Handler(),
		// Slow clients must not hold connections invisible to the
		// in-flight limiter (which only counts requests that reached a
		// handler): bound header reads and idle keep-alives.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	s.cfg.Logf("chainlogd: serving on %s as %s (max-inflight=%d, default-timeout=%s, max-nodes=%d)",
		addr, s.Role(), s.cfg.MaxInFlight, s.cfg.DefaultTimeout, s.cfg.MaxNodes)
	if s.replica.Load() {
		s.StartReplication(ctx)
	}
	select {
	case err := <-errc:
		return err // bind failure or unexpected listener death
	case <-ctx.Done():
	}
	s.stopReplication()
	s.SetDraining(true)
	s.cfg.Logf("chainlogd: draining (waiting up to %s for in-flight requests)", drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	s.cfg.Logf("chainlogd: drained cleanly")
	return nil
}
