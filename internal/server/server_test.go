package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"chainlog"
)

const familyProgram = `
	ancestor(X, Y) :- parent(X, Y).
	ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
	parent(bart, homer).
	parent(lisa, homer).
	parent(homer, abe).
	parent(abe, orville).
`

// newTestServer boots a Server over a fresh DB loaded with program,
// returning the server, its httptest listener and the DB.
func newTestServer(t *testing.T, program string, cfg Config) (*Server, *httptest.Server, *chainlog.DB) {
	t.Helper()
	db := chainlog.NewDB()
	if program != "" {
		if err := db.LoadProgram(program); err != nil {
			t.Fatal(err)
		}
	}
	cfg.DB = db
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, db
}

// postJSON posts a JSON body and returns status plus decoded response
// body bytes.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func queryRows(t *testing.T, url string, req QueryRequest) (int, *QueryResponse) {
	t.Helper()
	status, body := postJSON(t, url+"/v1/query", req)
	var qr QueryResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
	}
	return status, &qr
}

func TestQuerySingleTemplate(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	status, qr := queryRows(t, ts.URL, QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}, Stats: true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	want := [][]string{{"abe"}, {"homer"}, {"orville"}}
	if !reflect.DeepEqual(qr.Result.Rows, want) {
		t.Fatalf("rows %v, want %v", qr.Result.Rows, want)
	}
	if qr.Result.Stats == nil || qr.Result.Stats.Strategy != "chain" {
		t.Fatalf("stats missing or wrong: %+v", qr.Result.Stats)
	}
}

func TestQueryOneShotLiteral(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{})
	status, qr := queryRows(t, ts.URL, QueryRequest{Query: "ancestor(lisa, Y)"})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	direct, err := db.Query("ancestor(lisa, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qr.Result.Rows, direct.Rows) {
		t.Fatalf("served %v, direct %v", qr.Result.Rows, direct.Rows)
	}
}

func TestQueryBooleanResult(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	status, qr := queryRows(t, ts.URL, QueryRequest{Query: "ancestor(bart, abe)"})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !qr.Result.True || len(qr.Result.Rows) != 0 {
		t.Fatalf("want true with no rows, got %+v", qr.Result)
	}
}

func TestQueryBatch(t *testing.T) {
	_, ts, db := newTestServer(t, familyProgram, Config{})
	status, qr := queryRows(t, ts.URL, QueryRequest{
		Template: "ancestor(?, Y)",
		Batch:    [][]string{{"bart"}, {"homer"}, {"bart"}},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(qr.Results))
	}
	for i, bound := range []string{"bart", "homer", "bart"} {
		direct, err := db.Query(fmt.Sprintf("ancestor(%s, Y)", bound))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(qr.Results[i].Rows, direct.Rows) {
			t.Fatalf("batch[%d]: served %v, direct %v", i, qr.Results[i].Rows, direct.Rows)
		}
	}
}

func TestQueryMalformedBodies(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{"template": `},
		{"unknown field", `{"template": "ancestor(?, Y)", "argz": ["bart"]}`},
		{"trailing garbage", `{"query": "ancestor(bart, Y)"} extra`},
		{"neither query nor template", `{}`},
		{"both query and template", `{"query": "ancestor(bart, Y)", "template": "ancestor(?, Y)"}`},
		{"args with query", `{"query": "ancestor(bart, Y)", "args": ["x"]}`},
		{"args and batch", `{"template": "ancestor(?, Y)", "args": ["bart"], "batch": [["homer"]]}`},
		{"bad strategy", `{"template": "ancestor(?, Y)", "args": ["bart"], "strategy": "warp"}`},
		{"unparseable query", `{"query": "ancestor(bart"}`},
		{"wrong arg count", `{"template": "ancestor(?, Y)", "args": ["bart", "homer"]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestMutationQueryInterleaving drives a mutation/query schedule through
// HTTP and mirrors every step on a second DB evaluated directly; the
// served rows must match direct evaluation after every mutation.
func TestMutationQueryInterleaving(t *testing.T) {
	rules := `
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
	`
	_, ts, _ := newTestServer(t, rules, Config{})
	mirror := chainlog.NewDB()
	if err := mirror.LoadProgram(rules); err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		for _, q := range []string{"ancestor(bart, Y)", "ancestor(X, abe)", "ancestor(bart, abe)"} {
			status, qr := queryRows(t, ts.URL, QueryRequest{Query: q})
			if status != http.StatusOK {
				t.Fatalf("%s: %s: status %d", step, q, status)
			}
			direct, err := mirror.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Rows == nil {
				// Boolean queries have no rows; the wire form normalizes
				// nil to an empty array.
				direct.Rows = [][]string{}
			}
			if !reflect.DeepEqual(qr.Result.Rows, direct.Rows) || qr.Result.True != direct.True {
				t.Fatalf("%s: %s: served %v/%v, direct %v/%v",
					step, q, qr.Result.Rows, qr.Result.True, direct.Rows, direct.True)
			}
		}
	}

	// Assert.
	facts := []FactJSON{{Pred: "parent", Args: []string{"bart", "homer"}}, {Pred: "parent", Args: []string{"homer", "abe"}}}
	status, body := postJSON(t, ts.URL+"/v1/assert", MutationRequest{Facts: facts})
	if status != http.StatusOK {
		t.Fatalf("assert: status %d: %s", status, body)
	}
	var mr MutationResponse
	if err := json.Unmarshal(body, &mr); err != nil || mr.Asserted != 2 {
		t.Fatalf("assert: %s (err %v)", body, err)
	}
	mirror.Assert("parent", "bart", "homer")
	mirror.Assert("parent", "homer", "abe")
	check("after assert")

	// Retract.
	status, body = postJSON(t, ts.URL+"/v1/retract", MutationRequest{Facts: []FactJSON{{Pred: "parent", Args: []string{"homer", "abe"}}}})
	if status != http.StatusOK {
		t.Fatalf("retract: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil || mr.Retracted != 1 {
		t.Fatalf("retract: %s (err %v)", body, err)
	}
	mirror.Retract("parent", "homer", "abe")
	check("after retract")

	// Ordered delta: re-assert, add a branch, retract the branch — nets
	// to just the re-assert.
	ops := []DeltaOp{
		{Op: "assert", Pred: "parent", Args: []string{"homer", "abe"}},
		{Op: "assert", Pred: "parent", Args: []string{"abe", "zeke"}},
		{Op: "retract", Pred: "parent", Args: []string{"abe", "zeke"}},
	}
	status, body = postJSON(t, ts.URL+"/v1/delta", DeltaRequest{Ops: ops})
	if status != http.StatusOK {
		t.Fatalf("delta: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil || mr.Asserted != 1 || mr.Retracted != 0 {
		t.Fatalf("delta: %s (err %v), want the net single assert", body, err)
	}
	d := &chainlog.Delta{}
	d.Assert("parent", "homer", "abe").Assert("parent", "abe", "zeke").Retract("parent", "abe", "zeke")
	mirror.Apply(d)
	check("after delta")
}

// TestPlanCacheSurvivesFactChurn pins the serving acceptance criterion:
// template queries across assert/retract traffic reuse one compiled
// plan — compiles stays at 1 while hits grow — and /metrics reports it.
func TestPlanCacheSurvivesFactChurn(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{})
	run := func(want [][]string) {
		t.Helper()
		status, qr := queryRows(t, ts.URL, QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}})
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if !reflect.DeepEqual(qr.Result.Rows, want) {
			t.Fatalf("rows %v, want %v", qr.Result.Rows, want)
		}
	}
	run([][]string{{"abe"}, {"homer"}, {"orville"}})
	postJSON(t, ts.URL+"/v1/assert", MutationRequest{Facts: []FactJSON{{Pred: "parent", Args: []string{"orville", "eve"}}}})
	run([][]string{{"abe"}, {"eve"}, {"homer"}, {"orville"}})
	postJSON(t, ts.URL+"/v1/retract", MutationRequest{Facts: []FactJSON{{Pred: "parent", Args: []string{"orville", "eve"}}}})
	run([][]string{{"abe"}, {"homer"}, {"orville"}})

	if got := s.registry.compiles.Value(); got != 1 {
		t.Fatalf("plan compiles across fact churn = %d, want 1", got)
	}
	if got := s.registry.hits.Value(); got < 2 {
		t.Fatalf("plan cache hits = %d, want >= 2", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"chainlogd_plan_compiles_total 1",
		"chainlogd_plan_cache_hits_total 2",
		`chainlogd_requests_total{endpoint="query",code="200"}`,
		"chainlogd_request_seconds_bucket",
		"chainlogd_in_flight_requests",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestSingleFlightColdPrepare pins the thundering-herd behavior: many
// concurrent requests for one cold template must compile exactly once.
func TestSingleFlightColdPrepare(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{MaxInFlight: 64})
	const N = 32
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := postJSON(t, ts.URL+"/v1/query", QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}})
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", status)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.registry.compiles.Value(); got != 1 {
		t.Fatalf("thundering herd compiled %d times, want 1", got)
	}
}

// TestLimiter429 fills the in-flight semaphore directly and verifies the
// next request is turned away with 429 + Retry-After, and that draining
// the slot restores service.
func TestLimiter429(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{MaxInFlight: 2, RetryAfter: 7 * time.Second})
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"query": "ancestor(bart, Y)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want \"7\"", got)
	}
	if s.rejected.Value() == 0 {
		t.Fatal("rejection counter did not move")
	}
	<-s.sem
	<-s.sem
	status, _ := queryRows(t, ts.URL, QueryRequest{Query: "ancestor(bart, Y)"})
	if status != http.StatusOK {
		t.Fatalf("post-drain status %d, want 200", status)
	}
}

// TestMaxNodesAdmission verifies the admission cap turns an oversized
// traversal into a 422 instead of letting it run.
func TestMaxNodesAdmission(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{MaxNodes: 2})
	status, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", status, body)
	}
	// A request asking for more than the cap is clamped, not honored.
	status, body = postJSON(t, ts.URL+"/v1/query", QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}, MaxNodes: 1 << 30})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("clamped status %d, want 422: %s", status, body)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz %d %s, want 503 draining", resp.StatusCode, body)
	}
}

func TestExplain(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	resp, err := http.Get(ts.URL + "/v1/explain?query=" + "ancestor(bart,%20Y)")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "equation system") {
		t.Fatalf("explain %d %q", resp.StatusCode, body)
	}
}

// TestEmptyBatchRejected pins the empty-but-present batch body to a 400
// instead of a silent empty success.
func TestEmptyBatchRejected(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{})
	status, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"template": "ancestor(?, Y)", "args": []string{"bart"}, "batch": [][]string{},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400: %s", status, body)
	}
}

// TestRegistryBounded pins the registry memory bound: a client cycling
// max_nodes values (each a distinct plan key) cannot grow the registry
// past maxRegistryEntries.
func TestRegistryBounded(t *testing.T) {
	s, ts, _ := newTestServer(t, familyProgram, Config{MaxNodes: -1})
	for i := 0; i < maxRegistryEntries+50; i++ {
		status, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{
			Template: "ancestor(?, Y)", Args: []string{"bart"}, MaxNodes: i + 1000,
		})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
	}
	if got := s.registry.size(); got > maxRegistryEntries {
		t.Fatalf("registry grew to %d entries, bound is %d", got, maxRegistryEntries)
	}
}
