package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"chainlog"

	"chainlog/internal/wal"
)

// Replication model
//
// The engine's mutation API is already the protocol: an ordered Delta
// is an op-log entry, the fact epoch is its log sequence number, and
// DumpFacts is a snapshot. The serving layer adds the wiring:
//
//   - the primary commits every mutation under commitMu — apply to the
//     DB, append the record to the WAL at the epoch the apply produced
//     — so log order and epoch order are the same order;
//   - GET /v1/replicate?from=E streams committed records with epoch > E
//     as NDJSON and then long-polls for more, so a caught-up replica
//     costs one idle connection, not a poll loop;
//   - replicas tail that feed and ApplyAt each record: compiled plans
//     survive the churn (fact-epoch movement refreshes relation
//     pointers, it never recompiles), duplicate delivery is a no-op,
//     and each applied record is appended to the replica's own WAL so
//     a restart recovers locally and only tails the difference;
//   - a replica that has fallen below the primary's truncation horizon
//     gets 410 Gone and re-bootstraps from GET /v1/snapshot.
//
// Consistency: replicas serve reads at their applied epoch, stamped on
// every response as X-Chainlog-Epoch. A client needing read-your-writes
// sends X-Chainlog-Min-Epoch with the epoch a mutation response gave
// it; the handler waits (within the request deadline) until the node
// reaches that epoch before evaluating.

// Role names for Config.Role.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// ReplicateLine is one NDJSON line of the /v1/replicate feed: either a
// record line (Epoch + Ops) or a heartbeat line (Head only), which
// tells a caught-up replica where the primary is so it can report lag 0
// instead of unknown.
type ReplicateLine struct {
	Epoch uint64   `json:"epoch,omitempty"`
	Ops   []wal.Op `json:"ops,omitempty"`
	Head  uint64   `json:"head,omitempty"`
}

// DeltaOfOps converts WAL ops to the engine's Delta (shared by crash
// recovery in cmd/chainlogd and the replica tailer).
func DeltaOfOps(ops []wal.Op) *chainlog.Delta {
	d := &chainlog.Delta{}
	for _, op := range ops {
		if op.Retract {
			d.Retract(op.Pred, op.Args...)
		} else {
			d.Assert(op.Pred, op.Args...)
		}
	}
	return d
}

// errNotPrimary is returned by commit on a replica.
var errNotPrimary = errors.New("read-only replica: writes go to the primary")

// commit is the single write path: apply the Delta and append the
// resulting record to the WAL under one commit lock, so the WAL's
// record order is exactly the epoch order. Mutations that net to no
// change append nothing (the epoch did not move). Returns the fact
// epoch after the apply.
func (s *Server) commit(d *chainlog.Delta, ops []wal.Op) (chainlog.ApplyResult, uint64, error) {
	if s.replica.Load() {
		return chainlog.ApplyResult{}, 0, errNotPrimary
	}
	s.commitMu.Lock()
	res := s.db.Apply(d)
	epoch := s.db.FactEpoch()
	if s.wal != nil && (res.Asserted > 0 || res.Retracted > 0) {
		if err := s.wal.Append(wal.Record{Epoch: epoch, Ops: ops}); err != nil {
			s.commitMu.Unlock()
			// The state is applied but not durable: surface loudly. The
			// client gets a 500 and must treat the write as indeterminate.
			s.cfg.Logf("chainlogd: WAL append at epoch %d failed: %v", epoch, err)
			return res, epoch, fmt.Errorf("wal append: %w", err)
		}
	}
	s.commitMu.Unlock()
	s.notifyEpoch()
	s.maybeSnapshot()
	return res, epoch, nil
}

// writeCommitError renders commit failures: 403 with the primary's
// address for redirect on a replica, 500 otherwise.
func (s *Server) writeCommitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errNotPrimary) {
		if s.cfg.PrimaryURL != "" {
			w.Header().Set("X-Chainlog-Primary", s.cfg.PrimaryURL)
		}
		writeError(w, http.StatusForbidden, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// notifyEpoch wakes every min-epoch waiter; called after any fact-epoch
// movement (commit on the primary, applied record on a replica).
func (s *Server) notifyEpoch() {
	s.epochMu.Lock()
	close(s.epochCh)
	s.epochCh = make(chan struct{})
	s.epochMu.Unlock()
}

func (s *Server) epochUpdates() <-chan struct{} {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epochCh
}

// awaitEpoch blocks until the node's fact epoch reaches min — the
// X-Chainlog-Min-Epoch read-your-writes wait. The channel is grabbed
// before the epoch check so a movement between check and wait cannot be
// missed.
func (s *Server) awaitEpoch(ctx context.Context, min uint64) error {
	for {
		ch := s.epochUpdates()
		if s.db.FactEpoch() >= min {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// maybeSnapshot writes a WAL snapshot in the background once enough log
// bytes have accumulated since the last one, truncating fully covered
// segments. At most one snapshot runs at a time; the mutation path pays
// only the CAS.
func (s *Server) maybeSnapshot() {
	if s.wal == nil || s.cfg.SnapshotBytes <= 0 || s.wal.SizeSinceSnapshot() < s.cfg.SnapshotBytes {
		return
	}
	if !s.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.snapInFlight.Store(false)
		epoch, err := s.writeWALSnapshot()
		if err != nil {
			s.cfg.Logf("chainlogd: WAL snapshot failed: %v", err)
			return
		}
		s.snapshots.Inc()
		s.cfg.Logf("chainlogd: WAL snapshot at epoch %d (%d segments live)", epoch, s.wal.Segments())
	}()
}

// handleReplicate serves the log-shipping feed: every committed record
// with epoch > from as one NDJSON line, then a heartbeat with the
// current head, then long-poll until new records, the window elapses,
// the client leaves, or the server drains.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusNotImplemented, "replication requires a WAL (-wal-dir)")
		return
	}
	var from uint64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed from=%q: %v", q, err)
			return
		}
		from = v
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	enc := json.NewEncoder(w)
	wroteHeader := false
	begin := func() {
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wroteHeader = true
		}
	}
	window := time.NewTimer(s.cfg.ReplicateWindow)
	defer window.Stop()
	for {
		// Grab the update channel before reading: a record that lands
		// between the drain and the wait closes this channel, so it is
		// seen on the next loop instead of missed.
		ch := s.wal.Updates()
		err := s.wal.ReadFrom(from, func(rec wal.Record) error {
			begin()
			from = rec.Epoch
			return enc.Encode(ReplicateLine{Epoch: rec.Epoch, Ops: rec.Ops})
		})
		switch {
		case errors.Is(err, wal.ErrGone):
			if !wroteHeader {
				writeError(w, http.StatusGone, "epochs after %d were truncated by a snapshot; bootstrap from /v1/snapshot", from)
			}
			return
		case err != nil:
			if !wroteHeader {
				writeError(w, http.StatusInternalServerError, "%v", err)
			} else {
				s.cfg.Logf("chainlogd: replicate feed at epoch %d: %v", from, err)
			}
			return
		}
		begin()
		if err := enc.Encode(ReplicateLine{Head: s.db.FactEpoch()}); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-ch:
		case <-window.C:
			return // long-poll window over; the replica reconnects
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return // do not hold Shutdown open for a long-poll window
		}
	}
}

// writeWALSnapshot persists the store to the WAL in the configured
// snapshot format, truncating covered segments.
func (s *Server) writeWALSnapshot() (uint64, error) {
	if s.cfg.SnapshotFormat == "binary" {
		return s.wal.WriteSnapshotBinary(func(w io.Writer) (uint64, error) {
			return s.db.SnapshotBinary(w, nil)
		})
	}
	return s.wal.WriteSnapshot(func(w io.Writer) (uint64, error) {
		return s.db.SnapshotFacts(w, nil)
	})
}

// handleSnapshot streams the fact store with the captured epoch in
// X-Chainlog-Epoch — the bootstrap source for new replicas and
// chainlogctl. The default body is Datalog text; ?format=binary streams
// the columnar binary snapshot instead, which a large-store replica
// restores orders of magnitude faster.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var err error
	switch r.URL.Query().Get("format") {
	case "", "text":
		_, err = s.db.SnapshotFacts(w, func(epoch uint64) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Header().Set("X-Chainlog-Epoch", strconv.FormatUint(epoch, 10))
		})
	case "binary":
		_, err = s.db.SnapshotBinary(w, func(epoch uint64) {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Chainlog-Epoch", strconv.FormatUint(epoch, 10))
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown snapshot format %q (want text or binary)", r.URL.Query().Get("format"))
		return
	}
	if err != nil {
		s.cfg.Logf("chainlogd: snapshot stream: %v", err)
	}
}

// WALStatus is the wal section of a status response.
type WALStatus struct {
	LastEpoch          uint64 `json:"last_epoch"`
	OldestEpoch        uint64 `json:"oldest_epoch"`
	SnapshotEpoch      uint64 `json:"snapshot_epoch"`
	Segments           int    `json:"segments"`
	BytesSinceSnapshot int64  `json:"bytes_since_snapshot"`
}

// ReplStatus is the replication section of a replica's status response.
type ReplStatus struct {
	Connected bool   `json:"connected"`
	Head      uint64 `json:"head"`
	Lag       uint64 `json:"lag"`
}

// StatusResponse is the body of GET /v1/status — what chainlogctl
// renders per node.
type StatusResponse struct {
	Role        string      `json:"role"`
	RuleEpoch   uint64      `json:"rule_epoch"`
	FactEpoch   uint64      `json:"fact_epoch"`
	PrimaryURL  string      `json:"primary_url,omitempty"`
	Draining    bool        `json:"draining"`
	WAL         *WALStatus  `json:"wal,omitempty"`
	Replication *ReplStatus `json:"replication,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := StatusResponse{
		Role:       s.Role(),
		RuleEpoch:  s.db.RuleEpoch(),
		FactEpoch:  s.db.FactEpoch(),
		PrimaryURL: s.cfg.PrimaryURL,
		Draining:   s.draining.Load(),
	}
	if s.wal != nil {
		_, snapEpoch, _ := s.wal.Snapshot()
		resp.WAL = &WALStatus{
			LastEpoch:          s.wal.LastEpoch(),
			OldestEpoch:        s.wal.OldestEpoch(),
			SnapshotEpoch:      snapEpoch,
			Segments:           s.wal.Segments(),
			BytesSinceSnapshot: s.wal.SizeSinceSnapshot(),
		}
	}
	if s.replica.Load() {
		head := s.replHead.Load()
		lag := uint64(0)
		if fe := resp.FactEpoch; head > fe {
			lag = head - fe
		}
		resp.Replication = &ReplStatus{Connected: s.replConnected.Value() == 1, Head: head, Lag: lag}
	}
	w.Header().Set("X-Chainlog-Epoch", strconv.FormatUint(resp.FactEpoch, 10))
	writeJSON(w, http.StatusOK, resp)
}

// PromoteResponse is the body of POST /v1/promote.
type PromoteResponse struct {
	Role      string `json:"role"`
	FactEpoch uint64 `json:"fact_epoch"`
	Promoted  bool   `json:"promoted"`
}

// handlePromote flips a replica into a primary: the tailer stops and
// the write path opens at the replica's current epoch. Manual failover
// — the operator is responsible for making sure the old primary stopped
// accepting writes first. Promoting a primary is an idempotent no-op.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	promoted := s.replica.CompareAndSwap(true, false)
	if promoted {
		s.stopReplication()
		s.replConnected.Set(0)
		s.replLag.Set(0)
		s.cfg.Logf("chainlogd: promoted to primary at epoch %d", s.db.FactEpoch())
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Role: RolePrimary, FactEpoch: s.db.FactEpoch(), Promoted: promoted})
}

// Role reports the node's current role (promote can change it at
// runtime).
func (s *Server) Role() string {
	if s.replica.Load() {
		return RoleReplica
	}
	return RolePrimary
}

// StartReplication launches the tailer goroutine that follows the
// primary's feed until ctx is canceled or the node is promoted.
// ListenAndServe calls it for replica-role servers; tests drive it
// directly.
func (s *Server) StartReplication(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	s.replMu.Lock()
	if s.replCancel != nil {
		s.replCancel()
	}
	s.replCancel = cancel
	s.replMu.Unlock()
	s.replWG.Add(1)
	go func() {
		defer s.replWG.Done()
		s.replicate(ctx)
	}()
}

// stopReplication cancels the tailer and waits for it to exit, so a
// promote returns only after the last replicated record is applied.
func (s *Server) stopReplication() {
	s.replMu.Lock()
	cancel := s.replCancel
	s.replCancel = nil
	s.replMu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.replWG.Wait()
}

// errSnapshotNeeded: the primary truncated the epochs we need; fall
// back to a snapshot bootstrap.
var errSnapshotNeeded = errors.New("replica behind the primary's truncation horizon")

// replicate is the tailer loop: tail the feed, apply records, bootstrap
// from a snapshot when told to, back off on errors.
func (s *Server) replicate(ctx context.Context) {
	const maxBackoff = 5 * time.Second
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil && s.replica.Load() {
		err := s.tailOnce(ctx)
		s.replConnected.Set(0)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			backoff = 250 * time.Millisecond // clean window end: reconnect now
		case errors.Is(err, errSnapshotNeeded):
			if berr := s.bootstrap(ctx); berr != nil {
				s.cfg.Logf("chainlogd: snapshot bootstrap failed: %v", berr)
				backoff = sleepBackoff(ctx, backoff, maxBackoff)
			} else {
				backoff = 250 * time.Millisecond
			}
		default:
			s.cfg.Logf("chainlogd: replication tail: %v", err)
			backoff = sleepBackoff(ctx, backoff, maxBackoff)
		}
	}
}

func sleepBackoff(ctx context.Context, cur, max time.Duration) time.Duration {
	t := time.NewTimer(cur)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	if cur *= 2; cur > max {
		cur = max
	}
	return cur
}

// tailOnce holds one feed connection: stream records, apply each, until
// the primary closes the window. A nil return is a clean window end.
func (s *Server) tailOnce(ctx context.Context) error {
	from := s.db.FactEpoch()
	u := s.cfg.PrimaryURL + "/v1/replicate?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := s.replClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errSnapshotNeeded
	default:
		return fmt.Errorf("primary feed: HTTP %d", resp.StatusCode)
	}
	s.replConnected.Set(1)
	dec := json.NewDecoder(resp.Body)
	for {
		var line ReplicateLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // window closed cleanly
			}
			return err
		}
		if line.Epoch == 0 {
			if line.Head > 0 {
				s.replHead.Store(line.Head)
				s.updateLag()
			}
			continue
		}
		if err := s.applyReplicated(line); err != nil {
			return err
		}
	}
}

// applyReplicated lands one record: ApplyAt (idempotent — duplicate
// delivery moves nothing) and an append to the replica's own WAL, under
// the same commit lock the primary path uses so promote cannot
// interleave a local write between the two.
func (s *Server) applyReplicated(line ReplicateLine) error {
	d := DeltaOfOps(line.Ops)
	s.commitMu.Lock()
	_, applied := s.db.ApplyAt(d, line.Epoch)
	if applied && s.wal != nil {
		if err := s.wal.Append(wal.Record{Epoch: line.Epoch, Ops: line.Ops}); err != nil {
			s.commitMu.Unlock()
			return fmt.Errorf("replica wal append: %w", err)
		}
	}
	s.commitMu.Unlock()
	if applied {
		s.replApplied.Inc()
		s.notifyEpoch()
		s.maybeSnapshot()
	}
	if line.Epoch > s.replHead.Load() {
		s.replHead.Store(line.Epoch)
	}
	s.updateLag()
	return nil
}

func (s *Server) updateLag() {
	head, fe := s.replHead.Load(), s.db.FactEpoch()
	if head > fe {
		s.replLag.Set(int64(head - fe))
	} else {
		s.replLag.Set(0)
	}
}

// bootstrap pulls the primary's snapshot and restores it, landing the
// replica exactly at the snapshot's epoch; the tailer then follows the
// log from there. The restored state is immediately written to the
// local WAL as a snapshot so a restart recovers locally instead of
// re-bootstrapping.
func (s *Server) bootstrap(ctx context.Context) error {
	// Ask for the binary columnar snapshot; a primary predating it
	// ignores the parameter and streams text, which the auto-detecting
	// restore below handles transparently.
	u := s.cfg.PrimaryURL + "/v1/snapshot?format=binary"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := s.replClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary snapshot: HTTP %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Chainlog-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("primary snapshot: malformed X-Chainlog-Epoch: %v", err)
	}
	if err := s.db.RestoreFactsAuto(resp.Body, epoch); err != nil {
		return err
	}
	if s.wal != nil {
		if _, err := s.writeWALSnapshot(); err != nil {
			return fmt.Errorf("persisting bootstrap snapshot: %w", err)
		}
	}
	s.notifyEpoch()
	s.updateLag()
	s.cfg.Logf("chainlogd: bootstrapped from %s at epoch %d", u, epoch)
	return nil
}

// primaryURLValid pre-validates Config.PrimaryURL at New time.
func primaryURLValid(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("scheme %q (want http or https)", u.Scheme)
	}
	return nil
}
