package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"chainlog"

	"chainlog/internal/wal"
)

// newPrimary boots a WAL-backed primary over familyProgram.
func newPrimary(t *testing.T, cfg Config) (*Server, *httptest.Server, *chainlog.DB) {
	t.Helper()
	if cfg.WAL == nil {
		l, err := wal.Open(wal.Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		cfg.WAL = l
	}
	return newTestServer(t, familyProgram, cfg)
}

// newReplica boots a replica of primaryURL over the same program (a
// replica boots from the same program files as its primary) and starts
// its tailer.
func newReplica(t *testing.T, primaryURL string, cfg Config) (*Server, *httptest.Server, *chainlog.DB) {
	t.Helper()
	cfg.Role = RoleReplica
	cfg.PrimaryURL = primaryURL
	s, ts, db := newTestServer(t, familyProgram, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	s.StartReplication(ctx)
	t.Cleanup(func() { cancel(); s.stopReplication() })
	return s, ts, db
}

func assertFact(t *testing.T, url, pred string, args ...string) (int, *MutationResponse, http.Header) {
	t.Helper()
	data, err := json.Marshal(map[string]any{
		"facts": []map[string]any{{"pred": pred, "args": args}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/assert", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MutationResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, &mr, resp.Header
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicaRejectsWritesWithPrimaryRedirect(t *testing.T) {
	_, primary, _ := newPrimary(t, Config{})
	_, replica, _ := newReplica(t, primary.URL, Config{})

	status, _, hdr := assertFact(t, replica.URL, "parent", "maggie", "homer")
	if status != http.StatusForbidden {
		t.Fatalf("replica assert: status %d, want 403", status)
	}
	if got := hdr.Get("X-Chainlog-Primary"); got != primary.URL {
		t.Fatalf("X-Chainlog-Primary = %q, want %q", got, primary.URL)
	}
	// The primary named in the header accepts the same write.
	if status, mr, _ := assertFact(t, primary.URL, "parent", "maggie", "homer"); status != http.StatusOK || mr.Asserted != 1 {
		t.Fatalf("primary assert after redirect: status %d, %+v", status, mr)
	}
}

func TestMutationResponseCarriesEpoch(t *testing.T) {
	s, primary, _ := newPrimary(t, Config{})
	base := s.db.FactEpoch()

	status, mr, hdr := assertFact(t, primary.URL, "parent", "maggie", "homer")
	if status != http.StatusOK {
		t.Fatalf("assert: status %d", status)
	}
	if mr.Epoch != base+1 {
		t.Fatalf("mutation epoch = %d, want %d", mr.Epoch, base+1)
	}
	if got := hdr.Get("X-Chainlog-Epoch"); got != strconv.FormatUint(base+1, 10) {
		t.Fatalf("X-Chainlog-Epoch = %q, want %d", got, base+1)
	}
	// A net-no-change mutation (re-asserting a present fact) reports the
	// unmoved epoch.
	if _, mr, _ := assertFact(t, primary.URL, "parent", "maggie", "homer"); mr.Epoch != base+1 || mr.Asserted != 0 {
		t.Fatalf("no-op mutation: %+v", mr)
	}
}

func TestQueryStampsEpochHeader(t *testing.T) {
	s, primary, _ := newPrimary(t, Config{})
	assertFact(t, primary.URL, "parent", "maggie", "homer")

	resp, err := http.Post(primary.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"query": "ancestor(bart, Y)"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	want := strconv.FormatUint(s.db.FactEpoch(), 10)
	if got := resp.Header.Get("X-Chainlog-Epoch"); got != want {
		t.Fatalf("query X-Chainlog-Epoch = %q, want %s", got, want)
	}
}

// minEpochQuery posts a query carrying X-Chainlog-Min-Epoch.
func minEpochQuery(t *testing.T, url string, min uint64, timeoutMS int) (int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": "ancestor(bart, Y)", "timeout_ms": timeoutMS})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Chainlog-Min-Epoch", strconv.FormatUint(min, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

func TestMinEpochWaitAndTimeout(t *testing.T) {
	s, primary, _ := newPrimary(t, Config{})
	cur := s.db.FactEpoch()

	// Already satisfied: no wait.
	if status, _ := minEpochQuery(t, primary.URL, cur, 0); status != http.StatusOK {
		t.Fatalf("satisfied min-epoch query: status %d", status)
	}
	// Unreachable epoch with a short deadline: 504, not a hang.
	if status, _ := minEpochQuery(t, primary.URL, cur+100, 50); status != http.StatusGatewayTimeout {
		t.Fatalf("unreachable min-epoch query: status %d, want 504", status)
	}
	// Reached mid-wait: the query blocks until the mutation lands, then
	// answers at (or past) the requested epoch.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		assertFact(t, primary.URL, "parent", "maggie", "homer")
	}()
	status, hdr := minEpochQuery(t, primary.URL, cur+1, 3000)
	<-done
	if status != http.StatusOK {
		t.Fatalf("mid-wait min-epoch query: status %d", status)
	}
	if got, _ := strconv.ParseUint(hdr.Get("X-Chainlog-Epoch"), 10, 64); got < cur+1 {
		t.Fatalf("min-epoch query answered at epoch %d, want >= %d", got, cur+1)
	}
	// Malformed header is a client error.
	body, _ := json.Marshal(map[string]any{"query": "ancestor(bart, Y)"})
	req, _ := http.NewRequest(http.MethodPost, primary.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set("X-Chainlog-Min-Epoch", "soon")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min-epoch: status %d, want 400", resp.StatusCode)
	}
}

func TestReplicaConvergesAndServesReads(t *testing.T) {
	ps, primary, pdb := newPrimary(t, Config{})
	walDir := t.TempDir()
	rl, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	rs, replica, rdb := newReplica(t, primary.URL, Config{WAL: rl})

	for i := 0; i < 10; i++ {
		if status, _, _ := assertFact(t, primary.URL, "parent", fmt.Sprintf("kid%d", i), "bart"); status != http.StatusOK {
			t.Fatalf("primary assert %d failed", i)
		}
	}
	want := pdb.FactEpoch()
	waitFor(t, "replica catch-up", func() bool { return rdb.FactEpoch() == want })

	// Byte-identical answers for the same prepared query on both nodes.
	_, pq := queryRows(t, primary.URL, QueryRequest{Query: "ancestor(kid3, Y)"})
	_, rq := queryRows(t, replica.URL, QueryRequest{Query: "ancestor(kid3, Y)"})
	pj, _ := json.Marshal(pq.Result.Rows)
	rj, _ := json.Marshal(rq.Result.Rows)
	if !bytes.Equal(pj, rj) || len(pq.Result.Rows) == 0 {
		t.Fatalf("replica rows %s != primary rows %s", rj, pj)
	}

	// The replica journaled what it applied: a fresh log opened on its
	// WAL dir replays to the same epoch.
	if rl.LastEpoch() != want {
		t.Fatalf("replica WAL at epoch %d, want %d", rl.LastEpoch(), want)
	}

	// Read-your-writes through the pair: write at the primary, read at
	// the replica with the returned epoch as the floor.
	_, mr, _ := assertFact(t, primary.URL, "parent", "newest", "bart")
	if status, hdr := minEpochQuery(t, replica.URL, mr.Epoch, 3000); status != http.StatusOK {
		t.Fatalf("replica min-epoch read: status %d", status)
	} else if got, _ := strconv.ParseUint(hdr.Get("X-Chainlog-Epoch"), 10, 64); got < mr.Epoch {
		t.Fatalf("replica answered at epoch %d, want >= %d", got, mr.Epoch)
	}

	_ = ps
	_ = rs
}

func TestReplicaBootstrapsPastTruncatedLog(t *testing.T) {
	// Tiny segments + an explicit snapshot truncate the primary's log so
	// epoch 0 is gone; a fresh replica must fall back to the snapshot
	// endpoint and still converge.
	pl, err := wal.Open(wal.Options{Dir: t.TempDir(), SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ps, primary, pdb := newPrimary(t, Config{WAL: pl})
	for i := 0; i < 10; i++ {
		assertFact(t, primary.URL, "parent", fmt.Sprintf("kid%d", i), "bart")
	}
	if _, err := pl.WriteSnapshot(func(w io.Writer) (uint64, error) {
		return pdb.SnapshotFacts(w, nil)
	}); err != nil {
		t.Fatal(err)
	}
	if err := pl.ReadFrom(0, func(wal.Record) error { return nil }); err != wal.ErrGone {
		t.Fatalf("primary log still serves epoch 0 (err=%v); test needs truncation", err)
	}

	_, replica, rdb := newReplica(t, primary.URL, Config{})
	want := pdb.FactEpoch()
	waitFor(t, "bootstrap + catch-up", func() bool { return rdb.FactEpoch() == want })

	// Bootstrapped state answers like the primary, and keeps converging
	// through the feed afterwards.
	_, pq := queryRows(t, primary.URL, QueryRequest{Query: "ancestor(kid7, Y)"})
	_, rq := queryRows(t, replica.URL, QueryRequest{Query: "ancestor(kid7, Y)"})
	pj, _ := json.Marshal(pq.Result.Rows)
	rj, _ := json.Marshal(rq.Result.Rows)
	if !bytes.Equal(pj, rj) || len(pq.Result.Rows) == 0 {
		t.Fatalf("bootstrapped replica rows %s != primary rows %s", rj, pj)
	}
	assertFact(t, primary.URL, "parent", "late", "bart")
	waitFor(t, "post-bootstrap tail", func() bool { return rdb.FactEpoch() == pdb.FactEpoch() })
	_ = ps
}

func TestPromoteOpensWrites(t *testing.T) {
	_, primary, pdb := newPrimary(t, Config{})
	rs, replica, rdb := newReplica(t, primary.URL, Config{})
	assertFact(t, primary.URL, "parent", "maggie", "homer")
	waitFor(t, "replica catch-up", func() bool { return rdb.FactEpoch() == pdb.FactEpoch() })

	resp, err := http.Post(replica.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !pr.Promoted || pr.Role != RolePrimary {
		t.Fatalf("promote response: %+v", pr)
	}
	if rs.Role() != RolePrimary {
		t.Fatalf("role after promote = %s", rs.Role())
	}
	// Writes now land locally.
	if status, mr, _ := assertFact(t, replica.URL, "parent", "rod", "ned"); status != http.StatusOK || mr.Asserted != 1 {
		t.Fatalf("write after promote: status %d, %+v", status, mr)
	}
	// Promote is idempotent.
	resp2, err := http.Post(replica.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr2 PromoteResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if pr2.Promoted {
		t.Fatal("second promote reported a transition")
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, primary, pdb := newPrimary(t, Config{})
	assertFact(t, primary.URL, "parent", "maggie", "homer")

	resp, err := http.Get(primary.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Role != RolePrimary || st.FactEpoch != pdb.FactEpoch() || st.WAL == nil {
		t.Fatalf("primary status: %+v", st)
	}
	if st.WAL.LastEpoch != pdb.FactEpoch() {
		t.Fatalf("status WAL last epoch = %d, want %d", st.WAL.LastEpoch, pdb.FactEpoch())
	}

	_, replica, rdb := newReplica(t, primary.URL, Config{})
	waitFor(t, "replica catch-up", func() bool { return rdb.FactEpoch() == pdb.FactEpoch() })
	resp, err = http.Get(replica.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var rst StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rst.Role != RoleReplica || rst.PrimaryURL != primary.URL || rst.Replication == nil {
		t.Fatalf("replica status: %+v", rst)
	}
	waitFor(t, "replica lag 0", func() bool {
		resp, err := http.Get(replica.URL + "/v1/status")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var s StatusResponse
		if json.NewDecoder(resp.Body).Decode(&s) != nil || s.Replication == nil {
			return false
		}
		return s.Replication.Lag == 0 && s.Replication.Head == pdb.FactEpoch()
	})
}

func TestReplicateFeedStreamsAndLongPolls(t *testing.T) {
	_, primary, pdb := newPrimary(t, Config{ReplicateWindow: 2 * time.Second})
	// Tail from the boot epoch: epochs at or below it come from the
	// program files, not the WAL (a real replica boots the same files).
	base := pdb.FactEpoch()
	assertFact(t, primary.URL, "parent", "maggie", "homer")
	assertFact(t, primary.URL, "parent", "rod", "ned")

	resp, err := http.Get(fmt.Sprintf("%s/v1/replicate?from=%d", primary.URL, base))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var epochs []uint64
	var sawHead bool
	for len(epochs) < 2 || !sawHead {
		var line ReplicateLine
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("feed decode after %v: %v", epochs, err)
		}
		if line.Epoch != 0 {
			epochs = append(epochs, line.Epoch)
		} else if line.Head > 0 {
			sawHead = true
		}
	}
	if epochs[0] != base+1 || epochs[1] != base+2 {
		t.Fatalf("feed epochs = %v, want [%d %d]", epochs, base+1, base+2)
	}
	// The connection is now long-polling: a new commit arrives as a
	// fresh line without reconnecting.
	assertFact(t, primary.URL, "parent", "todd", "ned")
	want := pdb.FactEpoch()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var line ReplicateLine
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("long-poll decode: %v", err)
		}
		if line.Epoch == want {
			return
		}
	}
	t.Fatal("long-poll never delivered the new record")
}

func TestReplicateFeedGoneAndBadRequest(t *testing.T) {
	s, primary, _ := newTestServer(t, familyProgram, Config{})
	if s.wal != nil {
		t.Fatal("test wants a WAL-less server")
	}
	resp, err := http.Get(primary.URL + "/v1/replicate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("WAL-less feed status = %d, want 501", resp.StatusCode)
	}

	_, wp, _ := newPrimary(t, Config{})
	resp, err = http.Get(wp.URL + "/v1/replicate?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed from status = %d, want 400", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	_, primary, pdb := newPrimary(t, Config{})
	assertFact(t, primary.URL, "parent", "maggie", "homer")
	resp, err := http.Get(primary.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Chainlog-Epoch"), 10, 64)
	if err != nil || epoch != pdb.FactEpoch() {
		t.Fatalf("snapshot epoch header = %q (%v), want %d", resp.Header.Get("X-Chainlog-Epoch"), err, pdb.FactEpoch())
	}
	// The body restores into a fresh DB at exactly that epoch.
	db2 := chainlog.NewDB()
	if err := db2.LoadProgram(familyProgram); err != nil {
		t.Fatal(err)
	}
	if err := db2.RestoreFacts(resp.Body, epoch); err != nil {
		t.Fatal(err)
	}
	if db2.FactEpoch() != epoch {
		t.Fatalf("restored epoch = %d, want %d", db2.FactEpoch(), epoch)
	}
	ans, err := db2.Query("ancestor(maggie, Y)")
	if err != nil || len(ans.Rows) == 0 {
		t.Fatalf("restored DB query: %+v, err %v", ans, err)
	}
}

// postDelta posts an ordered op batch to /v1/delta.
func postDelta(t *testing.T, url string, ops []DeltaOp) (int, *MutationResponse) {
	t.Helper()
	status, body := postJSON(t, url+"/v1/delta", DeltaRequest{Ops: ops})
	var mr MutationResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatalf("bad delta response %s: %v", body, err)
		}
	}
	return status, &mr
}

// Conflicting operations on the same fact inside one delta must net out
// identically on the primary (ApplyResult, at most one epoch move, WAL
// append skipped when nothing changed) and on a replica replaying the
// shipped record.
func TestConflictingDeltaNetsAcrossReplication(t *testing.T) {
	ps, primary, pdb := newPrimary(t, Config{})
	_, replica, rdb := newReplica(t, primary.URL, Config{})
	base := pdb.FactEpoch()

	// Flip-flop on an absent fact: assert, retract, assert → net one
	// assert and exactly one epoch move.
	status, mr := postDelta(t, primary.URL, []DeltaOp{
		{Op: "assert", Pred: "parent", Args: []string{"zeke", "yaya"}},
		{Op: "retract", Pred: "parent", Args: []string{"zeke", "yaya"}},
		{Op: "assert", Pred: "parent", Args: []string{"zeke", "yaya"}},
	})
	if status != http.StatusOK || mr.Asserted != 1 || mr.Retracted != 0 {
		t.Fatalf("flip-flop delta: status %d, %+v, want net 1 assert", status, mr)
	}
	if mr.Epoch != base+1 {
		t.Fatalf("flip-flop delta moved epoch to %d, want %d", mr.Epoch, base+1)
	}

	// Assert-then-retract of an absent fact nets to nothing: no epoch
	// move and no WAL record.
	walHead := ps.wal.LastEpoch()
	status, mr = postDelta(t, primary.URL, []DeltaOp{
		{Op: "assert", Pred: "parent", Args: []string{"gone", "gone"}},
		{Op: "retract", Pred: "parent", Args: []string{"gone", "gone"}},
	})
	if status != http.StatusOK || mr.Asserted != 0 || mr.Retracted != 0 || mr.Epoch != base+1 {
		t.Fatalf("net-zero delta: status %d, %+v, want no change at epoch %d", status, mr, base+1)
	}
	if got := ps.wal.LastEpoch(); got != walHead {
		t.Fatalf("net-zero delta appended to the WAL: head %d -> %d", walHead, got)
	}

	// Retract-then-assert of a present fact is also a net no-op, mixed
	// with a real insertion in the same batch → net 1 assert.
	status, mr = postDelta(t, primary.URL, []DeltaOp{
		{Op: "retract", Pred: "parent", Args: []string{"bart", "homer"}},
		{Op: "assert", Pred: "parent", Args: []string{"bart", "homer"}},
		{Op: "assert", Pred: "parent", Args: []string{"yaya", "xan"}},
	})
	if status != http.StatusOK || mr.Asserted != 1 || mr.Retracted != 0 {
		t.Fatalf("mixed delta: status %d, %+v, want net 1 assert", status, mr)
	}
	if mr.Epoch != base+2 {
		t.Fatalf("mixed delta at epoch %d, want %d", mr.Epoch, base+2)
	}

	// The replica replays the shipped gross ops and must land on the
	// same epoch with the same answers.
	waitFor(t, "replica to converge", func() bool { return rdb.FactEpoch() == mr.Epoch })
	for _, q := range []string{"ancestor(bart, Y)", "ancestor(zeke, Y)", "parent(yaya, Y)"} {
		_, pq := queryRows(t, primary.URL, QueryRequest{Query: q})
		_, rq := queryRows(t, replica.URL, QueryRequest{Query: q})
		if !reflect.DeepEqual(pq.Result.Rows, rq.Result.Rows) {
			t.Fatalf("%s: primary %v, replica %v", q, pq.Result.Rows, rq.Result.Rows)
		}
	}
}
