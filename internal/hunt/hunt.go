// Package hunt implements the original algorithm of Hunt, Szymanski and
// Ullman [CACM 1977] for evaluating binary-relational expressions: the
// entire graph G(p) for the expression e_p is preconstructed — one node
// (q, u) per automaton state and domain element, one arc per tuple of
// every argument relation occurrence — and the query p(a, Y) is answered
// by a reachability search from (q_start, a).
//
// The paper calls this variant impractical precisely because the graph
// "contains copies of all tuples from every argument relation" even when
// large portions are irrelevant to the query or unreachable for any query
// constant; the demand-driven reorganization of Section 3 is the paper's
// improvement. Ablation A1 compares the two on the same inputs, reporting
// preconstructed arcs vs. demand-constructed nodes and facts consulted.
package hunt

import (
	"slices"

	"chainlog/internal/automaton"
	"chainlog/internal/edb"
	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

// Graph is the preconstructed evaluation graph for one expression.
type Graph struct {
	m   *automaton.NFA
	adj map[node][]node
	// Stats of the preconstruction.
	Stats Stats
}

// Stats describes the preconstruction cost.
type Stats struct {
	// Arcs is the number of arcs materialized (tuple copies, the paper's
	// size measure for expressions).
	Arcs int
	// Nodes is the number of distinct (state, term) nodes touched.
	Nodes int
	// DomainSize is the size of the active domain used for id arcs.
	DomainSize int
}

type node struct {
	q int
	u symtab.Sym
}

// Build preconstructs G(p) for a derived-free expression over the store.
// Every tuple of every base relation occurrence becomes an arc, and every
// id transition fans out over the whole active domain — by design: this
// is the baseline whose cost the demand-driven algorithm avoids.
func Build(e expr.Expr, store *edb.Store) *Graph {
	g := &Graph{m: automaton.Compile(e), adj: make(map[node][]node)}

	// Active domain: every symbol occurring in any relation.
	domainSet := make(map[symtab.Sym]bool)
	for _, name := range store.Relations() {
		r := store.Relation(name)
		r.Each(func(t []symtab.Sym) {
			for _, s := range t {
				domainSet[s] = true
			}
		})
	}
	domain := make([]symtab.Sym, 0, len(domainSet))
	for s := range domainSet {
		domain = append(domain, s)
	}
	slices.Sort(domain)
	g.Stats.DomainSize = len(domain)

	nodes := make(map[node]bool)
	addArc := func(from, to node) {
		g.adj[from] = append(g.adj[from], to)
		g.Stats.Arcs++
		nodes[from] = true
		nodes[to] = true
	}

	g.m.Each(func(_ int, t automaton.Trans) {
		switch {
		case t.Label.IsID():
			for _, u := range domain {
				addArc(node{t.From, u}, node{t.To, u})
			}
		default:
			r := store.Relation(t.Label.Pred)
			if r == nil {
				return
			}
			r.Each(func(tuple []symtab.Sym) {
				if t.Label.Inv {
					addArc(node{t.From, tuple[1]}, node{t.To, tuple[0]})
				} else {
					addArc(node{t.From, tuple[0]}, node{t.To, tuple[1]})
				}
			})
		}
	})
	g.Stats.Nodes = len(nodes)
	return g
}

// Query answers p(a, Y) by depth-first reachability over the
// preconstructed graph, returning the sorted terms at the final state and
// the number of nodes visited.
func (g *Graph) Query(a symtab.Sym) (answers []symtab.Sym, visited int) {
	seen := make(map[node]bool)
	stack := []node{{g.m.Start, a}}
	seen[stack[0]] = true
	out := make(map[symtab.Sym]bool)
	if g.m.Start == g.m.Final {
		out[a] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nn := range g.adj[n] {
			if !seen[nn] {
				seen[nn] = true
				stack = append(stack, nn)
				if nn.q == g.m.Final {
					out[nn.u] = true
				}
			}
		}
	}
	answers = make([]symtab.Sym, 0, len(out))
	for s := range out {
		answers = append(answers, s)
	}
	slices.Sort(answers)
	return answers, len(seen)
}
