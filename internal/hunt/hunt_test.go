package hunt

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func TestHuntTransitiveClosure(t *testing.T) {
	st := symtab.NewTable()
	store, src := workload.Chain(st, 10)
	g := Build(expr.MustParse("edge.edge*"), store)
	answers, visited := g.Query(src)
	if len(answers) != 10 {
		t.Fatalf("answers = %d", len(answers))
	}
	if visited == 0 || g.Stats.Arcs == 0 {
		t.Fatal("stats empty")
	}
}

func TestHuntMatchesChainEngine(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		store, src := workload.RandomGraph(st, 12, 28, seed)
		e := expr.MustParse("edge.edge*")
		g := Build(e, store)
		got, _ := g.Query(src)

		res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			return false
		}
		eng := chaineval.New(sys, chaineval.StoreSource{Store: store}, chaineval.Options{})
		want, err := eng.Query("tc", src)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want.Answers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Ablation A1: the preconstruction pays for every tuple — including those
// unreachable from any query constant — while the demand-driven engine's
// facts consulted stay flat when irrelevant data is added.
func TestPreconstructionPaysForIrrelevantData(t *testing.T) {
	st := symtab.NewTable()
	store, src := workload.Chain(st, 20)
	e := expr.MustParse("edge.edge*")
	arcsBefore := Build(e, store).Stats.Arcs
	for i := 0; i < 200; i++ {
		store.Insert("edge", st.Intern(fmt.Sprintf("j%d", i)), st.Intern(fmt.Sprintf("j%d", i+1)))
	}
	huntAfter := Build(e, store)
	if huntAfter.Stats.Arcs <= arcsBefore+150 {
		t.Fatalf("preconstruction arcs did not grow with irrelevant data: %d -> %d",
			arcsBefore, huntAfter.Stats.Arcs)
	}
	// Answers still correct despite the junk.
	answers, _ := huntAfter.Query(src)
	if len(answers) != 20 {
		t.Fatalf("answers = %d", len(answers))
	}
}

func TestIdentityTransitionsUseActiveDomain(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	a, b := st.Intern("a"), st.Intern("b")
	store.Insert("edge", a, b)
	// e* has id transitions; (a,a) and (b,b) must hold.
	g := Build(expr.MustParse("edge*"), store)
	ans, _ := g.Query(a)
	if len(ans) != 2 {
		t.Fatalf("edge*(a) = %v", ans)
	}
	ans, _ = g.Query(b)
	if len(ans) != 1 || ans[0] != b {
		t.Fatalf("edge*(b) = %v", ans)
	}
	if g.Stats.DomainSize != 2 {
		t.Fatalf("DomainSize = %d", g.Stats.DomainSize)
	}
}

func TestInverseLabels(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	a, b := st.Intern("a"), st.Intern("b")
	store.Insert("edge", a, b)
	g := Build(expr.MustParse("edge~"), store)
	ans, _ := g.Query(b)
	if len(ans) != 1 || ans[0] != a {
		t.Fatalf("edge~(b) = %v", ans)
	}
}
