package workload

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

func TestSampleASizes(t *testing.T) {
	st := symtab.NewTable()
	w := SampleA(st, 10)
	if w.Store.Relation("up").Len() != 10 {
		t.Fatalf("up = %d", w.Store.Relation("up").Len())
	}
	if w.Store.Relation("flat").Len() != 10 {
		t.Fatalf("flat = %d", w.Store.Relation("flat").Len())
	}
	if w.Store.Relation("down").Len() != 10 {
		t.Fatalf("down = %d", w.Store.Relation("down").Len())
	}
	if st.Name(w.Query) != "a" {
		t.Fatalf("query = %s", st.Name(w.Query))
	}
	// Hub: all flat edges end at c.
	r := w.Store.Relation("flat")
	for i := 0; i < r.Len(); i++ {
		if st.Name(r.Tuple(i)[1]) != "c" {
			t.Fatal("flat target is not the hub")
		}
	}
}

func TestSampleBLadder(t *testing.T) {
	st := symtab.NewTable()
	n := 8
	w := SampleB(st, n)
	if w.Store.Relation("up").Len() != n-1 {
		t.Fatalf("up = %d", w.Store.Relation("up").Len())
	}
	if w.Store.Relation("flat").Len() != n {
		t.Fatalf("flat = %d", w.Store.Relation("flat").Len())
	}
	// Shifted: down(b1, b2) present (same direction as up).
	b1, _ := st.Lookup("b1")
	succ := w.Store.Relation("down").Successors(b1)
	if len(succ) != 1 || st.Name(succ[0]) != "b2" {
		t.Fatalf("down(b1) = %v", succ)
	}
}

func TestSampleCAligned(t *testing.T) {
	st := symtab.NewTable()
	w := SampleC(st, 8)
	// Aligned: down(b2, b1).
	b2, _ := st.Lookup("b2")
	succ := w.Store.Relation("down").Successors(b2)
	if len(succ) != 1 || st.Name(succ[0]) != "b1" {
		t.Fatalf("down(b2) = %v", succ)
	}
}

func TestCyclicStructure(t *testing.T) {
	st := symtab.NewTable()
	w := Cyclic(st, 3, 5)
	if w.Store.Relation("up").Len() != 3 {
		t.Fatalf("up = %d", w.Store.Relation("up").Len())
	}
	if w.Store.Relation("down").Len() != 5 {
		t.Fatalf("down = %d", w.Store.Relation("down").Len())
	}
	if w.Store.Relation("flat").Len() != 1 {
		t.Fatalf("flat = %d", w.Store.Relation("flat").Len())
	}
	// Closing the up cycle: following up 3 times returns to start.
	cur := w.Query
	for i := 0; i < 3; i++ {
		s := w.Store.Relation("up").Successors(cur)
		if len(s) != 1 {
			t.Fatal("up is not a functional cycle")
		}
		cur = s[0]
	}
	if cur != w.Query {
		t.Fatal("up cycle does not close after m steps")
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	st1 := symtab.NewTable()
	st2 := symtab.NewTable()
	a := RandomTree(st1, 30, 0.3, 7)
	b := RandomTree(st2, 30, 0.3, 7)
	if a.Store.Relation("up").Len() != b.Store.Relation("up").Len() {
		t.Fatal("RandomTree not deterministic")
	}
	if a.Store.Relation("up").Len() != 29 {
		t.Fatalf("up = %d, want n-1", a.Store.Relation("up").Len())
	}
	// down is the inverse of up.
	up := a.Store.Relation("up")
	for i := 0; i < up.Len(); i++ {
		tu := up.Tuple(i)
		found := false
		for _, s := range a.Store.Relation("down").Successors(tu[1]) {
			if s == tu[0] {
				found = true
			}
		}
		if !found {
			t.Fatal("down is not the inverse of up")
		}
	}
}

func TestChain(t *testing.T) {
	st := symtab.NewTable()
	store, first := Chain(st, 5)
	if store.Relation("edge").Len() != 5 {
		t.Fatalf("edges = %d", store.Relation("edge").Len())
	}
	if st.Name(first) != "v0" {
		t.Fatalf("first = %s", st.Name(first))
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	st1, st2 := symtab.NewTable(), symtab.NewTable()
	s1, _ := RandomGraph(st1, 10, 20, 3)
	s2, _ := RandomGraph(st2, 10, 20, 3)
	if s1.Relation("edge").Len() != s2.Relation("edge").Len() {
		t.Fatal("RandomGraph not deterministic")
	}
}

func TestFlightDB(t *testing.T) {
	st := symtab.NewTable()
	f := FlightDB(st, 5, 3, 11)
	if f.Store.Relation("flight").Len() == 0 {
		t.Fatal("no flights")
	}
	if f.Store.Relation("is_deptime").Len() == 0 {
		t.Fatal("no deptimes")
	}
	if st.Name(f.Source) != "ap0" || st.Name(f.DepTime) != "100" {
		t.Fatalf("query = %s %s", st.Name(f.Source), st.Name(f.DepTime))
	}
	// Every flight's arrival is after its departure (times are numeric).
	r := f.Store.Relation("flight")
	for i := 0; i < r.Len(); i++ {
		tu := r.Tuple(i)
		var dt, at int
		fmt.Sscanf(st.Name(tu[1]), "%d", &dt)
		fmt.Sscanf(st.Name(tu[3]), "%d", &at)
		if at <= dt {
			t.Fatalf("flight arrives before departing: %v", tu)
		}
	}
	// No self-loop flights.
	for i := 0; i < r.Len(); i++ {
		tu := r.Tuple(i)
		if tu[0] == tu[2] {
			t.Fatal("self-loop flight generated")
		}
	}
}
