package workload

import (
	"bufio"
	"fmt"
	"io"
	"iter"
	"math/rand"
)

// This file holds the streaming generators behind the bulk-ingestion
// path: unlike the Store-building constructors above, these yield edges
// one at a time as (source, target) names, so a 100M-edge graph can be
// written to CSV or fed to an ingestor without ever materializing in
// memory. They are deterministic — the same parameters always produce
// the same stream, which is what lets benchmarks, loadgen and tests
// share one graph definition and compare answers byte-for-byte.

// GridStream yields the exact edge set of Grid(w, h) — node names
// g<x>_<y>, edges right and down, same order — as a stream. The natural
// query constant is g0_0.
func GridStream(w, h int) iter.Seq2[string, string] {
	return func(yield func(string, string) bool) {
		node := func(x, y int) string { return fmt.Sprintf("g%d_%d", x, y) }
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if x+1 < w && !yield(node(x, y), node(x+1, y)) {
					return
				}
				if y+1 < h && !yield(node(x, y), node(x, y+1)) {
					return
				}
			}
		}
	}
}

// PowerLawStream yields m edges over n nodes named n0..n(n-1) with
// Zipf-distributed endpoints — the degree skew of real link graphs,
// where a few hub nodes collect a large share of the edges. Determinism
// comes from the explicit seed. Self-loops and duplicate edges occur, as
// they do in raw crawl data; ingestion deduplicates.
func PowerLawStream(n, m int, seed int64) iter.Seq2[string, string] {
	return func(yield func(string, string) bool) {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
		for i := 0; i < m; i++ {
			src := fmt.Sprintf("n%d", zipf.Uint64())
			dst := fmt.Sprintf("n%d", zipf.Uint64())
			if !yield(src, dst) {
				return
			}
		}
	}
}

// WriteCSV writes the stream as "src,dst" lines — the input format of
// the bulk CSV ingestor — and returns the number of edges written.
func WriteCSV(w io.Writer, edges iter.Seq2[string, string]) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := 0
	for src, dst := range edges {
		if _, err := bw.WriteString(src); err != nil {
			return n, err
		}
		bw.WriteByte(',')
		bw.WriteString(dst)
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}
