// Package workload generates the extensional databases used by the
// paper's evaluation section and by this module's tests and benchmarks:
// the three acyclic same-generation samples of Figure 7, the cyclic
// sample of Figure 8, random genealogies, chains and grids, and the
// Section 4 flight database.
//
// Figure 7 is partially illegible in the available text of the paper; the
// shapes here are reconstructed from the prose analysis, which pins down
// the behavior each sample must induce (see DESIGN.md, "Workload
// reconstructions"). All generators are deterministic: random ones take
// an explicit seed.
package workload

import (
	"fmt"
	"math/rand"

	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// SG is a generated same-generation instance: a store with up/flat/down
// relations and the query constant.
type SG struct {
	Store *edb.Store
	// Query is the bound first argument of the query sg(Query, Y).
	Query symtab.Sym
	// N is the size parameter.
	N int
}

// SGProgram is the paper's same-generation program text.
const SGProgram = `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`

// SampleA builds Figure 7 sample (a), the "double star": the query
// constant fans up to n nodes, every one of which flats to a single
// shared hub, which fans down to n answers. The traversal algorithm
// collapses the hub into one graph node (O(n) total) while pair-at-a-time
// methods pay the n×n join through the hub.
func SampleA(st *symtab.Table, n int) *SG {
	s := edb.NewStore(st)
	a := st.Intern("a")
	c := st.Intern("c")
	for i := 1; i <= n; i++ {
		u := st.Intern(fmt.Sprintf("u%d", i))
		s.Insert("up", a, u)
		s.Insert("flat", u, c)
		s.Insert("down", c, st.Intern(fmt.Sprintf("w%d", i)))
	}
	return &SG{Store: s, Query: a, N: n}
}

// SampleB builds Figure 7 sample (b), the "shifted ladder": an up chain
// a1→…→an, a flat rung at every level, and a down chain running in the
// same direction (down(b_i, b_{i+1})), so the down-walks started at
// different levels never share automaton spine nodes. Each b_i is met at
// Θ(i) distinct levels: Θ(n²) nodes for the traversal algorithm and for
// counting ("each term u_i ... appears as the second component in i−1
// distinct nodes").
func SampleB(st *symtab.Table, n int) *SG {
	s := edb.NewStore(st)
	as := make([]symtab.Sym, n+1)
	bs := make([]symtab.Sym, n+1)
	for i := 1; i <= n; i++ {
		as[i] = st.Intern(fmt.Sprintf("a%d", i))
		bs[i] = st.Intern(fmt.Sprintf("b%d", i))
	}
	for i := 1; i < n; i++ {
		s.Insert("up", as[i], as[i+1])
		s.Insert("down", bs[i], bs[i+1])
	}
	for i := 1; i <= n; i++ {
		s.Insert("flat", as[i], bs[i])
	}
	return &SG{Store: s, Query: as[1], N: n}
}

// SampleC builds Figure 7 sample (c), the "aligned ladder": as sample (b)
// but with the down chain aligned against the up chain
// (down(b_{i+1}, b_i)), so every down-walk runs along the single shared
// automaton spine. Each a_i and b_i yields one node: O(n) for the
// traversal algorithm, while Henschen–Naqvi — re-walking the down chain
// per level without memoization — pays Θ(n²) ("the same path will never
// be traversed twice" only holds for the graph-traversal method).
func SampleC(st *symtab.Table, n int) *SG {
	s := edb.NewStore(st)
	as := make([]symtab.Sym, n+1)
	bs := make([]symtab.Sym, n+1)
	for i := 1; i <= n; i++ {
		as[i] = st.Intern(fmt.Sprintf("a%d", i))
		bs[i] = st.Intern(fmt.Sprintf("b%d", i))
	}
	for i := 1; i < n; i++ {
		s.Insert("up", as[i], as[i+1])
		s.Insert("down", bs[i+1], bs[i])
	}
	for i := 1; i <= n; i++ {
		s.Insert("flat", as[i], bs[i])
	}
	return &SG{Store: s, Query: as[1], N: n}
}

// Cyclic builds the Figure 8 sample: an up cycle of length m, a down
// cycle of length n and a single flat edge between them. When gcd(m,n)=1
// the complete answer to sg(a0, Y) requires m·n iterations of the main
// loop, and without the accessible-node bound the algorithm never
// terminates.
func Cyclic(st *symtab.Table, m, n int) *SG {
	s := edb.NewStore(st)
	as := make([]symtab.Sym, m)
	bs := make([]symtab.Sym, n)
	for i := 0; i < m; i++ {
		as[i] = st.Intern(fmt.Sprintf("ca%d", i))
	}
	for j := 0; j < n; j++ {
		bs[j] = st.Intern(fmt.Sprintf("cb%d", j))
	}
	for i := 0; i < m; i++ {
		s.Insert("up", as[i], as[(i+1)%m])
	}
	for j := 0; j < n; j++ {
		// down cycle: down(b_{j+1}, b_j) — walking down decrements.
		s.Insert("down", bs[(j+1)%n], bs[j])
	}
	s.Insert("flat", as[0], bs[0])
	return &SG{Store: s, Query: as[0], N: m * n}
}

// RandomTree builds a random genealogy: a forest where each of n people
// has a parent chosen among earlier people (so up is acyclic), down is
// the inverse of up, and flat links each person to itself with
// probability pflat (plus always the roots). Used by property tests and
// Theorem 4 experiments.
func RandomTree(st *symtab.Table, n int, pflat float64, seed int64) *SG {
	rng := rand.New(rand.NewSource(seed))
	s := edb.NewStore(st)
	people := make([]symtab.Sym, n)
	for i := 0; i < n; i++ {
		people[i] = st.Intern(fmt.Sprintf("p%d", i))
	}
	for i := 1; i < n; i++ {
		parent := people[rng.Intn(i)]
		s.Insert("up", people[i], parent)
		s.Insert("down", parent, people[i])
	}
	for i := 0; i < n; i++ {
		if i == 0 || rng.Float64() < pflat {
			s.Insert("flat", people[i], people[i])
		}
	}
	return &SG{Store: s, Query: people[n-1], N: n}
}

// Chain builds a simple edge chain v0→v1→…→vn for transitive-closure
// workloads; the query constant is v0.
func Chain(st *symtab.Table, n int) (*edb.Store, symtab.Sym) {
	s := edb.NewStore(st)
	prev := st.Intern("v0")
	first := prev
	for i := 1; i <= n; i++ {
		cur := st.Intern(fmt.Sprintf("v%d", i))
		s.Insert("edge", prev, cur)
		prev = cur
	}
	return s, first
}

// Grid builds a w×h grid with edges right and down: grid reachability is
// the classic dense-DAG stress case for transitive closures (many
// distinct paths to each node, but each node one graph entry under
// memoization). The query constant is the top-left corner g0_0.
func Grid(st *symtab.Table, w, h int) (*edb.Store, symtab.Sym) {
	s := edb.NewStore(st)
	node := func(x, y int) symtab.Sym { return st.Intern(fmt.Sprintf("g%d_%d", x, y)) }
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				s.Insert("edge", node(x, y), node(x+1, y))
			}
			if y+1 < h {
				s.Insert("edge", node(x, y), node(x, y+1))
			}
		}
	}
	return s, node(0, 0)
}

// RandomGraph builds a random directed graph with n nodes and m edges for
// reachability workloads (possibly cyclic). The query constant is v0.
func RandomGraph(st *symtab.Table, n, m int, seed int64) (*edb.Store, symtab.Sym) {
	rng := rand.New(rand.NewSource(seed))
	s := edb.NewStore(st)
	nodes := make([]symtab.Sym, n)
	for i := range nodes {
		nodes[i] = st.Intern(fmt.Sprintf("v%d", i))
	}
	for k := 0; k < m; k++ {
		s.Insert("edge", nodes[rng.Intn(n)], nodes[rng.Intn(n)])
	}
	return s, nodes[0]
}

// FlightProgram is the Section 4 airline-connection program. is_deptime
// projects departure times; the built-in AT1 < DT1 enforces a feasible
// transfer.
const FlightProgram = `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).
`

// Flights is a generated flight database.
type Flights struct {
	Store *edb.Store
	// Source and DepTime are the query's bound arguments.
	Source, DepTime symtab.Sym
	// Airports and FlightCount describe the instance.
	Airports, FlightCount int
}

// FlightDB generates a random flight schedule: airports ap0..ap(k-1), and
// per airport `perAirport` outgoing flights at increasing times. Times
// are integer minutes rendered as numeric constants, so the parser's
// comparison built-ins order them correctly. is_deptime is materialized
// as the projection of flight onto its departure-time column, as the
// paper suggests.
func FlightDB(st *symtab.Table, airports, perAirport int, seed int64) *Flights {
	rng := rand.New(rand.NewSource(seed))
	s := edb.NewStore(st)
	aps := make([]symtab.Sym, airports)
	for i := range aps {
		aps[i] = st.Intern(fmt.Sprintf("ap%d", i))
	}
	timeSym := func(t int) symtab.Sym { return st.Intern(fmt.Sprintf("%d", t)) }
	deptimes := map[int]bool{}
	count := 0
	for i := range aps {
		for f := 0; f < perAirport; f++ {
			dt := rng.Intn(1300) + 100
			dur := rng.Intn(200) + 30
			dest := aps[rng.Intn(airports)]
			if dest == aps[i] {
				dest = aps[(i+1)%airports]
			}
			s.Insert("flight", aps[i], timeSym(dt), dest, timeSym(dt+dur))
			deptimes[dt] = true
			count++
		}
	}
	// A deterministic seed flight so the bound query cnx(ap0, 100, D, AT)
	// always has at least one departure to chase.
	if airports > 1 {
		s.Insert("flight", aps[0], timeSym(100), aps[1], timeSym(100+45))
		deptimes[100] = true
		count++
	}
	for t := range deptimes {
		s.Insert("is_deptime", timeSym(t))
	}
	return &Flights{Store: s, Source: aps[0], DepTime: timeSym(100), Airports: airports, FlightCount: count}
}
