// Package wal implements chainlogd's durable write-ahead log: an
// ordered, segmented, CRC-checked record of every applied fact Delta,
// keyed by the DB fact epoch it produced.
//
// The engine's mutation model is already a replication protocol in
// disguise — ordered Delta+Apply batches are an op log, the fact epoch
// is a log sequence number, and DumpFacts is a snapshot. This package
// gives that log a durable on-disk form:
//
//   - records are binary frames (length + CRC32-Castagnoli + payload)
//     appended to segment files named wal-<first-epoch>.seg;
//   - segments rotate at Options.SegmentBytes and the fsync policy is a
//     flag (SyncAlways per append, SyncRotate only at segment
//     boundaries and snapshots);
//   - a snapshot (snap-<epoch>.dl holding the DumpFacts text, or
//     snap-<epoch>.bin holding the binary columnar form, of the store
//     at that epoch) is written atomically — temp file, fsync, rename,
//     directory fsync — and allows every segment wholly at or below its
//     epoch to be deleted;
//   - Open tolerates a torn tail: a crash mid-append leaves a partial
//     or CRC-broken final frame, which recovery truncates away; torn
//     frames anywhere but the final segment's tail are real corruption
//     and refuse to open.
//
// Readers (crash recovery, the /v1/replicate feed) replay records with
// ReadFrom, which serves only committed bytes, so tailing a live log
// never observes a half-written frame. Updates returns a broadcast
// channel closed on every append, for long-poll feeds.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op is one fact mutation inside a record, mirroring chainlog's Delta
// operations (the wal package stays below chainlog in the import graph,
// so it carries its own op type).
type Op struct {
	Retract bool     `json:"retract,omitempty"`
	Pred    string   `json:"pred"`
	Args    []string `json:"args"`
}

// Record is one applied Delta: the ordered ops and the fact epoch the
// database reached by applying them. Epochs in a log are strictly
// increasing; replaying a record onto a database already at or past its
// epoch is a no-op (chainlog.DB.ApplyAt), which makes replay idempotent.
type Record struct {
	Epoch uint64 `json:"epoch"`
	Ops   []Op   `json:"ops"`
}

// SyncPolicy says when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs the active segment after every append: a record
	// acknowledged to a client survives kill -9 and power loss.
	SyncAlways SyncPolicy = iota
	// SyncRotate fsyncs only at segment rotation, snapshots and Close:
	// a crash can lose the tail of the active segment (torn-tail
	// recovery truncates it), in exchange for mutation latency.
	SyncRotate
)

// ParseSyncPolicy maps the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "rotate", "none":
		return SyncRotate, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want \"always\" or \"rotate\")", s)
}

// Options configures Open.
type Options struct {
	// Dir is the log directory; created if absent. Required.
	Dir string
	// SegmentBytes is the rotation threshold. Default 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
}

// ErrGone reports that a requested replay position has been truncated
// away by a snapshot: the caller must bootstrap from the snapshot
// instead of tailing the log. The /v1/replicate feed maps it to HTTP
// 410 Gone.
var ErrGone = errors.New("wal: requested epochs truncated by a snapshot")

// errTorn marks a frame that does not decode cleanly; recovery turns it
// into a truncation at the last good offset when it sits at the tail of
// the final segment.
var errTorn = errors.New("wal: torn record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader    = 8       // uint32 payload length + uint32 CRC32C
	maxRecordBytes = 1 << 28 // decode sanity bound on a single frame
	segPrefix      = "wal-"
	segSuffix      = ".seg"
	snapPrefix     = "snap-"
	snapSuffix     = ".dl"  // text snapshot (DumpFacts format)
	snapSuffixBin  = ".bin" // binary columnar snapshot (SnapshotBinary format)
)

// segment is one on-disk log file. first is the epoch of its first
// record (from the filename); size counts committed bytes — readers
// never read past it, so tailing a live segment cannot observe a
// half-written frame.
type segment struct {
	path  string
	first uint64
	size  int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append calls must come from a single logical writer (the
// daemon's commit path) to keep epochs ordered.
type Log struct {
	opts Options

	mu        sync.Mutex
	segs      []segment // ascending by first epoch; last is active
	active    *os.File  // open handle on the last segment, nil if none
	lastEpoch uint64    // epoch of the final record, 0 if log empty
	snapEpoch uint64    // epoch of the newest snapshot, 0 if none
	snapPath  string
	sinceSnap int64         // bytes appended since the newest snapshot
	updates   chan struct{} // closed and replaced on every append

	onFsync func(time.Duration) // observer for fsync latency metrics
}

// Open opens (or creates) the log in opts.Dir, recovering from a torn
// tail: a partial or CRC-broken final frame in the last segment is
// truncated away. Corruption anywhere else fails the open — that is
// data loss the operator must see, not skip.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, updates: make(chan struct{})}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// SetFsyncObserver installs a callback receiving the duration of every
// segment fsync (for the daemon's WAL fsync histogram).
func (l *Log) SetFsyncObserver(f func(time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onFsync = f
}

// scan enumerates the directory, validates every segment and truncates
// a torn tail on the final one.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			var first uint64
			if _, err := fmt.Sscanf(name, segPrefix+"%016x"+segSuffix, &first); err != nil {
				return fmt.Errorf("wal: malformed segment name %s", name)
			}
			l.segs = append(l.segs, segment{path: filepath.Join(l.opts.Dir, name), first: first})
		case strings.HasPrefix(name, snapPrefix) && (strings.HasSuffix(name, snapSuffix) || strings.HasSuffix(name, snapSuffixBin)):
			ext := snapSuffix
			if strings.HasSuffix(name, snapSuffixBin) {
				ext = snapSuffixBin
			}
			var epoch uint64
			if _, err := fmt.Sscanf(name, snapPrefix+"%016x"+ext, &epoch); err != nil {
				return fmt.Errorf("wal: malformed snapshot name %s", name)
			}
			// Strictly newer epochs win; at an equal epoch the binary form
			// is preferred (same content, cheaper to restore).
			if epoch > l.snapEpoch || l.snapPath == "" ||
				(epoch == l.snapEpoch && ext == snapSuffixBin) {
				l.snapEpoch = epoch
				l.snapPath = filepath.Join(l.opts.Dir, name)
			}
		case strings.HasSuffix(name, ".tmp"):
			// A snapshot write that never reached its rename; harmless.
			_ = os.Remove(filepath.Join(l.opts.Dir, name))
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	for i := range l.segs {
		seg := &l.segs[i]
		last := i == len(l.segs)-1
		end, lastEpoch, err := scanSegment(seg.path)
		if err != nil {
			if !(last && errors.Is(err, errTorn)) {
				return fmt.Errorf("wal: segment %s: %w", seg.path, err)
			}
			// Torn tail on the final segment: a crash mid-append. Truncate
			// to the last cleanly framed record and continue from there.
			if terr := os.Truncate(seg.path, end); terr != nil {
				return terr
			}
		}
		seg.size = end
		if lastEpoch > l.lastEpoch {
			l.lastEpoch = lastEpoch
		}
	}
	// Reopen the final segment for appending; earlier segments are
	// immutable and opened per read.
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		if _, err := f.Seek(l.segs[n-1].size, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		l.active = f
	}
	if l.lastEpoch < l.snapEpoch {
		l.lastEpoch = l.snapEpoch
	}
	return nil
}

// scanSegment walks a segment's frames, returning the offset past the
// last valid record and that record's epoch. A frame that cannot be
// decoded yields errTorn with end at the last good offset.
func scanSegment(path string) (end int64, lastEpoch uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := &frameReader{r: f}
	for {
		rec, ok, err := r.next()
		if err != nil {
			return end, lastEpoch, err
		}
		if !ok {
			return end, lastEpoch, nil
		}
		end = r.off
		lastEpoch = rec.Epoch
	}
}

// frameReader decodes frames sequentially, tracking the offset past the
// last fully decoded frame.
type frameReader struct {
	r   io.Reader
	off int64
	buf []byte
}

// next returns the next record; ok=false at a clean EOF. Any partial or
// corrupt frame yields errTorn.
func (fr *frameReader) next() (Record, bool, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, false, nil
		}
		return Record{}, false, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxRecordBytes {
		return Record{}, false, errTorn
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Record{}, false, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, false, errTorn
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, false, errTorn
	}
	fr.off += int64(frameHeader) + int64(length)
	return rec, true, nil
}

// encodeRecord renders the binary payload: uvarint epoch, uvarint op
// count, then per op a retract flag byte and length-prefixed pred/args.
func encodeRecord(rec Record) []byte {
	buf := binary.AppendUvarint(nil, rec.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		flag := byte(0)
		if op.Retract {
			flag = 1
		}
		buf = append(buf, flag)
		buf = binary.AppendUvarint(buf, uint64(len(op.Pred)))
		buf = append(buf, op.Pred...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Args)))
		for _, a := range op.Args {
			buf = binary.AppendUvarint(buf, uint64(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

func decodeRecord(buf []byte) (Record, error) {
	var rec Record
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errTorn
		}
		buf = buf[n:]
		return v, nil
	}
	str := func() (string, error) {
		n, err := next()
		if err != nil || n > uint64(len(buf)) {
			return "", errTorn
		}
		s := string(buf[:n])
		buf = buf[n:]
		return s, nil
	}
	epoch, err := next()
	if err != nil {
		return rec, err
	}
	rec.Epoch = epoch
	nops, err := next()
	if err != nil || nops > maxRecordBytes {
		return rec, errTorn
	}
	rec.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(buf) < 1 {
			return rec, errTorn
		}
		op := Op{Retract: buf[0] == 1}
		buf = buf[1:]
		if op.Pred, err = str(); err != nil {
			return rec, err
		}
		nargs, err := next()
		if err != nil || nargs > maxRecordBytes {
			return rec, errTorn
		}
		op.Args = make([]string, 0, nargs)
		for j := uint64(0); j < nargs; j++ {
			a, err := str()
			if err != nil {
				return rec, err
			}
			op.Args = append(op.Args, a)
		}
		rec.Ops = append(rec.Ops, op)
	}
	if len(buf) != 0 {
		return rec, errTorn
	}
	return rec, nil
}

// Append writes one record durably (per the sync policy) and wakes
// long-poll readers. Record epochs must be strictly increasing.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Epoch <= l.lastEpoch {
		return fmt.Errorf("wal: append epoch %d not after last epoch %d", rec.Epoch, l.lastEpoch)
	}
	payload := encodeRecord(rec)
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)

	n := len(l.segs)
	if l.active == nil || (l.segs[n-1].size > 0 && l.segs[n-1].size+int64(len(frame)) > l.opts.SegmentBytes) {
		if err := l.rotateLocked(rec.Epoch); err != nil {
			return err
		}
		n = len(l.segs)
	}
	if _, err := l.active.Write(frame); err != nil {
		return err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncActiveLocked(); err != nil {
			return err
		}
	}
	l.segs[n-1].size += int64(len(frame))
	l.sinceSnap += int64(len(frame))
	l.lastEpoch = rec.Epoch
	close(l.updates)
	l.updates = make(chan struct{})
	return nil
}

// rotateLocked seals the active segment and starts a new one whose
// first record will be epoch.
func (l *Log) rotateLocked(epoch uint64) error {
	if l.active != nil {
		if err := l.syncActiveLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return err
		}
		l.active = nil
	}
	path := filepath.Join(l.opts.Dir, fmt.Sprintf(segPrefix+"%016x"+segSuffix, epoch))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.segs = append(l.segs, segment{path: path, first: epoch})
	return syncDir(l.opts.Dir)
}

func (l *Log) syncActiveLocked() error {
	start := time.Now()
	err := l.active.Sync()
	if l.onFsync != nil {
		l.onFsync(time.Since(start))
	}
	return err
}

// Sync forces the active segment to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	return l.syncActiveLocked()
}

// Updates returns a channel closed by the next Append — grab it before
// reading so a record landing between the read and the wait is not
// missed, then re-read when it fires.
func (l *Log) Updates() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates
}

// LastEpoch returns the epoch of the final record (or of the snapshot,
// whichever is newer); 0 for an empty log.
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// OldestEpoch returns the first epoch still present in segment files,
// or 0 if the log holds no records.
func (l *Log) OldestEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestLocked()
}

func (l *Log) oldestLocked() uint64 {
	for _, s := range l.segs {
		if s.size > 0 {
			return s.first
		}
	}
	return 0
}

// Snapshot returns the newest snapshot's path and epoch, if any.
func (l *Log) Snapshot() (path string, epoch uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapPath, l.snapEpoch, l.snapPath != ""
}

// SizeSinceSnapshot reports bytes appended since the newest snapshot —
// the daemon's auto-snapshot trigger.
func (l *Log) SizeSinceSnapshot() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Segments reports the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// ReadFrom replays every committed record with epoch > from, in order.
// It returns ErrGone when records after from have been truncated away
// by a snapshot (the caller must bootstrap from the snapshot). Reading
// concurrently with Append is safe: only bytes committed at call time
// are visited.
func (l *Log) ReadFrom(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	if from < l.lastEpoch {
		// Records in (from, oldest) are not on disk: either a snapshot
		// truncated them or they predate this log. Both cases are only
		// bridgeable by a snapshot bootstrap, so refuse the silent hole.
		if oldest := l.oldestLocked(); oldest == 0 || from+1 < oldest {
			l.mu.Unlock()
			return ErrGone
		}
	}
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	for i, seg := range segs {
		if seg.size == 0 {
			continue
		}
		// A segment's epochs live in [first, nextFirst): skip it when the
		// whole range is at or below from.
		if i+1 < len(segs) && segs[i+1].first <= from+1 {
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				return ErrGone // truncated between the metadata copy and here
			}
			return err
		}
		fr := &frameReader{r: io.LimitReader(f, seg.size)}
		for fr.off < seg.size {
			rec, ok, err := fr.next()
			if err != nil || !ok {
				f.Close()
				return fmt.Errorf("wal: segment %s: corrupt committed record at offset %d", seg.path, fr.off)
			}
			if rec.Epoch <= from {
				continue
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// WriteSnapshot atomically persists a snapshot: write calls back with a
// temp-file writer and returns the fact epoch the content captures
// (chainlog.DB.SnapshotFacts does exactly that). The file is fsynced,
// renamed to snap-<epoch>.dl, the directory fsynced, and every segment
// whose records all lie at or below the epoch is deleted. Older
// snapshots are removed last, so a crash anywhere leaves a valid
// recovery chain on disk.
func (l *Log) WriteSnapshot(write func(io.Writer) (uint64, error)) (uint64, error) {
	return l.writeSnapshotExt(snapSuffix, write)
}

// WriteSnapshotBinary is WriteSnapshot for binary columnar snapshots:
// same atomicity and truncation, file named snap-<epoch>.bin. write
// should stream chainlog.DB.SnapshotBinary.
func (l *Log) WriteSnapshotBinary(write func(io.Writer) (uint64, error)) (uint64, error) {
	return l.writeSnapshotExt(snapSuffixBin, write)
}

func (l *Log) writeSnapshotExt(ext string, write func(io.Writer) (uint64, error)) (uint64, error) {
	tmp, err := os.CreateTemp(l.opts.Dir, snapPrefix+"*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	epoch, err := write(tmp)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	final := filepath.Join(l.opts.Dir, fmt.Sprintf(snapPrefix+"%016x"+ext, epoch))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return 0, err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		return 0, err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	oldSnap := l.snapPath
	if epoch >= l.snapEpoch {
		l.snapEpoch = epoch
		l.snapPath = final
		l.sinceSnap = 0
		if epoch > l.lastEpoch {
			l.lastEpoch = epoch
		}
	}
	// Truncate: segment i is disposable when the next segment starts at
	// or below epoch+1 (so no record above epoch lives in it). The
	// active segment always stays.
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first <= epoch+1 {
			_ = os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if oldSnap != "" && oldSnap != final {
		_ = os.Remove(oldSnap)
	}
	return epoch, nil
}

// Close seals the log. Appending after Close is an error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	if err := l.syncActiveLocked(); err != nil {
		return err
	}
	err := l.active.Close()
	l.active = nil
	return err
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
