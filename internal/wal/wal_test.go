package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// rec builds a one-op record at the given epoch, with the epoch baked
// into the fact so replays are distinguishable.
func rec(epoch uint64) Record {
	return Record{Epoch: epoch, Ops: []Op{{
		Pred: "e", Args: []string{fmt.Sprintf("k%d", epoch), "v"},
	}}}
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func readAll(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var got []Record
	if err := l.ReadFrom(from, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("ReadFrom(%d): %v", from, err)
	}
	return got
}

func epochs(recs []Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.Epoch
	}
	return out
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	want := []Record{
		{Epoch: 1, Ops: []Op{{Pred: "e", Args: []string{"a", "b"}}}},
		{Epoch: 2, Ops: []Op{
			{Pred: "e", Args: []string{"b", "c"}},
			{Retract: true, Pred: "e", Args: []string{"a", "b"}},
		}},
		{Epoch: 3, Ops: []Op{{Pred: "unary", Args: []string{"x"}}}},
		{Epoch: 4, Ops: nil}, // epoch-only record (net-no-change replays)
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := readAll(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Epoch != want[i].Epoch || !reflect.DeepEqual(append([]Op{}, got[i].Ops...), append([]Op{}, want[i].Ops...)) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := readAll(t, l, 2); !reflect.DeepEqual(epochs(got), []uint64{3, 4}) {
		t.Errorf("ReadFrom(2) epochs = %v, want [3 4]", epochs(got))
	}
	if got := readAll(t, l, 4); len(got) != 0 {
		t.Errorf("ReadFrom(4) returned %d records, want 0", len(got))
	}
	if l.LastEpoch() != 4 {
		t.Errorf("LastEpoch = %d, want 4", l.LastEpoch())
	}
}

func TestAppendRejectsNonMonotonicEpoch(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Append(rec(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(5)); err == nil {
		t.Error("appending a duplicate epoch succeeded")
	}
	if err := l.Append(rec(4)); err == nil {
		t.Error("appending a past epoch succeeded")
	}
	if err := l.Append(rec(6)); err != nil {
		t.Errorf("appending the next epoch failed: %v", err)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(rec(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir})
	if l2.LastEpoch() != 20 {
		t.Fatalf("LastEpoch after reopen = %d, want 20", l2.LastEpoch())
	}
	if got := readAll(t, l2, 10); len(got) != 10 || got[0].Epoch != 11 {
		t.Fatalf("ReadFrom(10) after reopen: %v", epochs(got))
	}
	// And the reopened log accepts appends.
	if err := l2.Append(rec(21)); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for e := uint64(1); e <= 12; e++ {
		if err := l.Append(rec(e)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("only %d segments with a 64-byte rotation threshold", n)
	}
	if got := epochs(readAll(t, l, 0)); len(got) != 12 || got[0] != 1 || got[11] != 12 {
		t.Fatalf("multi-segment replay epochs = %v", got)
	}
	// Reopen across segments too.
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	if got := epochs(readAll(t, l2, 5)); len(got) != 7 || got[0] != 6 {
		t.Fatalf("reopened multi-segment ReadFrom(5) = %v", got)
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncated(t *testing.T) {
	// A crash mid-append can leave any suffix of the final frame
	// missing. Cut the file at every length in the torn range and check
	// recovery lands on the previous record each time.
	base := t.TempDir()
	l := mustOpen(t, Options{Dir: base})
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	goodLen := func() int64 {
		seg := lastSegment(t, base)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}()
	if err := l.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segBytes, err := os.ReadFile(lastSegment(t, base))
	if err != nil {
		t.Fatal(err)
	}

	for cut := goodLen + 1; cut < int64(len(segBytes)); cut++ {
		dir := t.TempDir()
		seg := filepath.Join(dir, filepath.Base(lastSegment(t, base)))
		if err := os.WriteFile(seg, segBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		if l2.LastEpoch() != 1 {
			t.Fatalf("cut at %d: LastEpoch = %d, want 1", cut, l2.LastEpoch())
		}
		if got := epochs(readAll(t, l2, 0)); !reflect.DeepEqual(got, []uint64{1}) {
			t.Fatalf("cut at %d: replay = %v, want [1]", cut, got)
		}
		// The torn bytes are gone from disk and the log appends cleanly
		// over the truncation point.
		if err := l2.Append(rec(2)); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if got := epochs(readAll(t, l2, 0)); !reflect.DeepEqual(got, []uint64{1, 2}) {
			t.Fatalf("cut at %d: replay after append = %v", cut, got)
		}
		l2.Close()
	}
}

func TestCorruptPayloadTruncatedAtTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte in the final frame: the CRC check must reject
	// it and recovery truncates back to record 1.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir})
	if l2.LastEpoch() != 1 {
		t.Fatalf("LastEpoch after CRC corruption = %d, want 1", l2.LastEpoch())
	}
}

func TestCorruptionInEarlierSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for e := uint64(1); e <= 8; e++ {
		if err := l.Append(rec(e)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("test needs at least two segments")
	}
	l.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	first := matches[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 64}); err == nil {
		t.Fatal("open succeeded despite corruption in a sealed segment")
	}
}

func TestOversizeLengthHeaderIsTorn(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append a frame header claiming an absurd payload length; recovery
	// must treat it as torn, not try to allocate it.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordBytes+1)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2 := mustOpen(t, Options{Dir: dir})
	if l2.LastEpoch() != 1 {
		t.Fatalf("LastEpoch = %d, want 1", l2.LastEpoch())
	}
}

func TestSnapshotTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for e := uint64(1); e <= 10; e++ {
		if err := l.Append(rec(e)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	epoch, err := l.WriteSnapshot(func(w io.Writer) (uint64, error) {
		_, werr := io.WriteString(w, "e(snapshotted, state).\n")
		return 10, werr
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 10 {
		t.Fatalf("snapshot epoch = %d, want 10", epoch)
	}
	if after := l.Segments(); after >= before {
		t.Errorf("snapshot kept %d of %d segments", after, before)
	}
	if l.SizeSinceSnapshot() != 0 {
		t.Errorf("SizeSinceSnapshot = %d after snapshot", l.SizeSinceSnapshot())
	}
	path, snapEpoch, ok := l.Snapshot()
	if !ok || snapEpoch != 10 {
		t.Fatalf("Snapshot() = %q, %d, %v", path, snapEpoch, ok)
	}
	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), "snapshotted") {
		t.Fatalf("snapshot content = %q, %v", data, err)
	}

	// Replay from a truncated position must refuse with ErrGone...
	if err := l.ReadFrom(0, func(Record) error { return nil }); !errors.Is(err, ErrGone) {
		t.Fatalf("ReadFrom(0) after truncation = %v, want ErrGone", err)
	}
	// ...while replay from the snapshot epoch (or any retained record)
	// still works, including across a reopen.
	if got := readAll(t, l, 10); len(got) != 0 {
		t.Fatalf("ReadFrom(10) = %v", epochs(got))
	}
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	if p2, e2, ok := l2.Snapshot(); !ok || e2 != 10 || p2 != path {
		t.Fatalf("reopened Snapshot() = %q, %d, %v", p2, e2, ok)
	}
	if l2.LastEpoch() != 10 {
		t.Fatalf("reopened LastEpoch = %d, want 10", l2.LastEpoch())
	}
	if err := l2.Append(rec(11)); err != nil {
		t.Fatal(err)
	}
	if got := epochs(readAll(t, l2, 10)); !reflect.DeepEqual(got, []uint64{11}) {
		t.Fatalf("post-snapshot replay = %v, want [11]", got)
	}
}

func TestSnapshotReplacesOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	snap := func(epoch uint64) {
		t.Helper()
		if err := l.Append(rec(epoch)); err != nil {
			t.Fatal(err)
		}
		if _, err := l.WriteSnapshot(func(w io.Writer) (uint64, error) {
			return epoch, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap(1)
	snap(2)
	matches, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix))
	if len(matches) != 1 {
		t.Fatalf("expected exactly one snapshot on disk, found %v", matches)
	}
	if _, epoch, _ := l.Snapshot(); epoch != 2 {
		t.Fatalf("snapshot epoch = %d, want 2", epoch)
	}
}

func TestFailedSnapshotLeavesLogIntact(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := l.WriteSnapshot(func(io.Writer) (uint64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("WriteSnapshot error = %v, want boom", err)
	}
	if _, _, ok := l.Snapshot(); ok {
		t.Error("failed snapshot was recorded")
	}
	if got := epochs(readAll(t, l, 0)); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("replay after failed snapshot = %v", got)
	}
	// The temp file must not linger for the next Open to trip over.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

func TestUpdatesBroadcast(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	ch := l.Updates()
	select {
	case <-ch:
		t.Fatal("updates channel fired before any append")
	default:
	}
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("updates channel did not fire on append")
	}
}

func TestSyncPolicies(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways, "rotate": SyncRotate, "none": SyncRotate,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}

	// SyncRotate still yields a fully readable log after Close (which
	// syncs), and the fsync observer fires for SyncAlways appends.
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Sync: SyncRotate})
	for e := uint64(1); e <= 5; e++ {
		if err := l.Append(rec(e)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2 := mustOpen(t, Options{Dir: dir, Sync: SyncRotate})
	if l2.LastEpoch() != 5 {
		t.Fatalf("SyncRotate LastEpoch after reopen = %d", l2.LastEpoch())
	}

	fsyncs := 0
	la := mustOpen(t, Options{Dir: t.TempDir(), Sync: SyncAlways})
	la.SetFsyncObserver(func(time.Duration) { fsyncs++ })
	if err := la.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if fsyncs == 0 {
		t.Error("SyncAlways append did not fsync")
	}
}

func TestReadFromConcurrentWithAppend(t *testing.T) {
	l := mustOpen(t, Options{Dir: t.TempDir()})
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := uint64(2); e <= 200; e++ {
			if err := l.Append(rec(e)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Interleave replays with the append storm: every replay must see a
	// strictly increasing, gap-free prefix starting after `from`.
	for i := 0; i < 50; i++ {
		from := uint64(i % 3)
		prev := from
		if err := l.ReadFrom(from, func(r Record) error {
			if r.Epoch != prev+1 {
				return fmt.Errorf("epoch %d after %d", r.Epoch, prev)
			}
			prev = r.Epoch
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
