package adorn

import (
	"strings"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

func adornProgram(t *testing.T, src, query string) (*Program, error) {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := parser.ParseQuery(query, st)
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	return Adorn(res.Program, q)
}

func mustAdorn(t *testing.T, src, query string) *Program {
	t.Helper()
	ap, err := adornProgram(t, src, query)
	if err != nil {
		t.Fatalf("Adorn: %v", err)
	}
	return ap
}

const sgSrc = `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`

// The paper's sg^bf adorned program: the recursive rule passes the
// binding through up, so sg in the body is adorned bf as well.
func TestSGAdornBF(t *testing.T) {
	ap := mustAdorn(t, sgSrc, "sg(john, Y)")
	if ap.Query.Key() != "sg_bf" {
		t.Fatalf("query pred = %s", ap.Query.Key())
	}
	if len(ap.Rules) != 2 {
		t.Fatalf("rules = %d\n%s", len(ap.Rules), ap.Render())
	}
	rec := ap.Rules[1]
	if rec.Derived == nil || rec.DerivedAdorn != "bf" {
		t.Fatalf("recursive rule adorned %q", rec.DerivedAdorn)
	}
	if len(rec.In) != 1 || rec.In[0].Pred != "up" {
		t.Fatalf("in group = %v", rec.In)
	}
	if len(rec.Out) != 1 || rec.Out[0].Pred != "down" {
		t.Fatalf("out group = %v", rec.Out)
	}
	if err := ap.ChainCheck(); err != nil {
		t.Fatalf("sg^bf should be a chain program: %v", err)
	}
}

// sg^bb: both arguments bound; up and down are separate components, both
// connected to bound head variables, so both join the in group (our
// generalization of condition 3) and the derived literal is adorned bb.
func TestSGAdornBB(t *testing.T) {
	ap := mustAdorn(t, sgSrc, "sg(john, mary)")
	rec := ap.Rules[1]
	if rec.DerivedAdorn != "bb" {
		t.Fatalf("derived adorn = %q, want bb\n%s", rec.DerivedAdorn, ap.Render())
	}
	if len(rec.In) != 2 || len(rec.Out) != 0 {
		t.Fatalf("in=%d out=%d", len(rec.In), len(rec.Out))
	}
	if err := ap.ChainCheck(); err != nil {
		t.Fatalf("chain check: %v", err)
	}
}

// Naughton's example (the paper's second Section 4 example): the
// adornments alternate bf/fb through the mutual rules.
func TestNaughtonExample(t *testing.T) {
	ap := mustAdorn(t, `
p(X, Y) :- b0(X, Y).
p(X, Y) :- b1(X, Z), p(Y, Z).
`, "p(a, Y)")
	keys := map[string]bool{}
	for _, r := range ap.Rules {
		keys[r.HeadPred().Key()] = true
	}
	if !keys["p_bf"] || !keys["p_fb"] || len(keys) != 2 {
		t.Fatalf("adorned predicates = %v\n%s", keys, ap.Render())
	}
	// Rule r2 for p^bf: p(X,Y) :- b1(X,Z), p(Y,Z): X bound, so b1 is the
	// in group; derived p(Y,Z): Y free, Z bound (via b1) → fb.
	var r2 Rule
	found := false
	for _, r := range ap.Rules {
		if r.HeadAdorn == "bf" && r.Derived != nil {
			r2, found = r, true
		}
	}
	if !found || r2.DerivedAdorn != "fb" {
		t.Fatalf("p^bf recursive rule derived adorn = %q", r2.DerivedAdorn)
	}
	// Rule r4 for p^fb: in group empty, b1 is the out group, derived bf.
	var r4 Rule
	found = false
	for _, r := range ap.Rules {
		if r.HeadAdorn == "fb" && r.Derived != nil {
			r4, found = r, true
		}
	}
	if !found || r4.DerivedAdorn != "bf" {
		t.Fatalf("p^fb recursive rule derived adorn = %q", r4.DerivedAdorn)
	}
	if len(r4.In) != 0 || len(r4.Out) != 1 {
		t.Fatalf("p^fb split: in=%d out=%d", len(r4.In), len(r4.Out))
	}
	if err := ap.ChainCheck(); err != nil {
		t.Fatalf("chain check: %v", err)
	}
}

// The paper's non-chain counterexample: in rule
// p(X,Y) :- b1(X,Y), p(Y,Z) the in group b1(X,Y) binds the free head
// variable Y; the transformation would compute a superset, so ChainCheck
// must reject it.
func TestNonChainCounterexample(t *testing.T) {
	ap := mustAdorn(t, `
p(X, Y) :- b0(X, Y).
p(X, Y) :- b1(X, Y), p(Y, Z).
`, "p(a, Y)")
	err := ap.ChainCheck()
	if err == nil {
		t.Fatal("counterexample passed the chain check")
	}
	if !strings.Contains(err.Error(), "Y") {
		t.Fatalf("error should name the offending variable: %v", err)
	}
}

// The flight program: the built-in AT1 < DT1 connects is_deptime to
// flight, so the whole group lands in the in group and the derived
// literal keeps both bindings (cnx^bbff throughout).
func TestFlightAdornment(t *testing.T) {
	ap := mustAdorn(t, `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).
`, "cnx(hel, 900, D, AT)")
	if ap.Query.Key() != "cnx_bbff" {
		t.Fatalf("query pred = %s", ap.Query.Key())
	}
	for _, r := range ap.Rules {
		if r.Derived != nil {
			if r.DerivedAdorn != "bbff" {
				t.Fatalf("derived adorn = %q\n%s", r.DerivedAdorn, ap.Render())
			}
			if len(r.In) != 3 { // flight, <, is_deptime
				t.Fatalf("in group = %d literals", len(r.In))
			}
			if len(r.Out) != 0 {
				t.Fatalf("out group = %d literals", len(r.Out))
			}
		}
	}
	if err := ap.ChainCheck(); err != nil {
		t.Fatalf("chain check: %v", err)
	}
	if len(ap.Rules) != 2 {
		t.Fatalf("adornment closure generated %d rules", len(ap.Rules))
	}
}

func TestAdornRejections(t *testing.T) {
	// Two derived literals per body.
	if _, err := adornProgram(t, `
p(X, Z) :- p(X, Y), p(Y, Z).
p(X, Y) :- e(X, Y).
`, "p(a, Y)"); err == nil {
		t.Error("two derived literals accepted")
	}
	// Base query predicate.
	if _, err := adornProgram(t, `
p(X, Y) :- e(X, Y).
`, "e(a, Y)"); err == nil {
		t.Error("base query predicate accepted")
	}
	// Arity mismatch.
	if _, err := adornProgram(t, `
p(X, Y) :- e(X, Y).
`, "p(a, b, c)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Unsafe rule.
	if _, err := adornProgram(t, `
p(X, Y) :- e(X, X).
`, "p(a, Y)"); err == nil {
		t.Error("unsafe rule accepted")
	}
}

func TestBoundFreeArgs(t *testing.T) {
	st := symtab.NewTable()
	lit := ast.Atom("cnx", ast.V("S"), ast.V("DT"), ast.V("D"), ast.V("AT"))
	b := BoundArgs(lit, "bbff")
	f := FreeArgs(lit, "bbff")
	if len(b) != 2 || b[0].Var != "S" || b[1].Var != "DT" {
		t.Fatalf("BoundArgs = %v", b)
	}
	if len(f) != 2 || f[0].Var != "D" || f[1].Var != "AT" {
		t.Fatalf("FreeArgs = %v", f)
	}
	_ = st
}

// Adornment closure terminates and covers all reachable adorned preds on
// a program with three mutually recursive predicates.
func TestAdornClosureMutual(t *testing.T) {
	ap := mustAdorn(t, `
p(X, Y) :- a(X, Y).
p(X, Z) :- a(X, Y), q(Y, Z).
q(X, Z) :- b(X, Y), r(Y, Z).
r(X, Z) :- c(X, Y), p(Y, Z).
`, "p(a0, Y)")
	keys := map[string]bool{}
	for _, r := range ap.Rules {
		keys[r.HeadPred().Key()] = true
	}
	for _, want := range []string{"p_bf", "q_bf", "r_bf"} {
		if !keys[want] {
			t.Errorf("missing adorned predicate %s (have %v)", want, keys)
		}
	}
}
