// Package adorn constructs adorned programs: given a linear Datalog
// program (at most one derived literal per rule body) and a query, it
// computes how the query's bindings propagate sideways through each rule,
// producing one adorned rule per (rule, reachable adornment) pair.
//
// The sideways information passing follows Section 4 of the paper exactly:
// for a rule
//
//	p(X̄) :- b1(Ȳ1), ..., bn(Ȳn) [, q(Z̄)]
//
// the base literals are split into an "in" group b1..bi and an "out" group
// b(i+1)..bn around the derived literal such that conditions (1)–(5) hold:
// the groups are not directly connected, the in group is a connected set,
// the in group is connected to a bound head variable, and the derived
// literal's adornment binds exactly the argument positions filled by
// constants, by variables of the in group, or by bound head variables.
//
// The package also implements the paper's chain-program check (the
// condition of Lemma 6): in every adorned rule the variables of the in
// group must be disjoint from the head variables designated free —
// otherwise the transformed binary-chain program may compute a strict
// superset of the original relation.
package adorn

import (
	"fmt"
	"strings"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
)

// Pred is an adorned predicate p^a.
type Pred struct {
	Name  string
	Adorn string // over {b, f}, one per argument position
}

// Key returns the unique name used for the adorned predicate (e.g.
// "sg" with adornment "bf" → "sg_bf").
func (p Pred) Key() string { return p.Name + "_" + p.Adorn }

func (p Pred) String() string { return p.Name + "^" + p.Adorn }

// Rule is one adorned rule.
type Rule struct {
	// ID is a stable identifier r1, r2, ... in generation order, used to
	// name the base-r/in-r/out-r predicates of the transformation.
	ID string
	// Head is the original head literal; HeadAdorn its adornment.
	Head      ast.Literal
	HeadAdorn string
	// Derived is the single derived body literal, or nil for a base-only
	// rule; DerivedAdorn is its adornment.
	Derived      *ast.Literal
	DerivedAdorn string
	// In and Out are the base literals (and attached built-ins) before
	// and after the derived literal under the information-passing split.
	// For base-only rules the entire body is in AllBody instead.
	In, Out []ast.Literal
	// AllBody is the full body for base-only rules.
	AllBody []ast.Literal
	// Orig is the source rule.
	Orig ast.Rule
}

// HeadPred returns the adorned head predicate.
func (r Rule) HeadPred() Pred { return Pred{Name: r.Head.Pred, Adorn: r.HeadAdorn} }

// DerivedPred returns the adorned derived body predicate; ok is false for
// base-only rules.
func (r Rule) DerivedPred() (Pred, bool) {
	if r.Derived == nil {
		return Pred{}, false
	}
	return Pred{Name: r.Derived.Pred, Adorn: r.DerivedAdorn}, true
}

// Program is the adorned program generated from a query.
type Program struct {
	// Query is the adorned query predicate.
	Query Pred
	// QueryLit is the original query literal.
	QueryLit ast.Query
	// Rules lists all generated adorned rules.
	Rules []Rule
	// ByPred indexes rules by adorned head predicate key.
	ByPred map[string][]int
	// Derived is the set of derived predicate names in the original
	// program.
	Derived map[string]bool
}

// Adorn generates the adorned program for prog and query. It requires a
// linear program in the special form with at most one derived literal per
// body, and a derived query predicate.
func Adorn(prog *ast.Program, q ast.Query) (*Program, error) {
	info := analysis.Analyze(prog)
	if !info.SingleDerivedBody() {
		return nil, fmt.Errorf("adorn: program has a rule with more than one derived body literal")
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, fmt.Errorf("adorn: %w", err)
	}
	if !info.Derived[q.Pred] {
		return nil, fmt.Errorf("adorn: query predicate %s is not derived", q.Pred)
	}
	ar, err := prog.Arities()
	if err != nil {
		return nil, fmt.Errorf("adorn: %w", err)
	}
	if ar[q.Pred] != q.Arity() {
		return nil, fmt.Errorf("adorn: query arity %d does not match predicate %s/%d", q.Arity(), q.Pred, ar[q.Pred])
	}

	ap := &Program{
		Query:    Pred{Name: q.Pred, Adorn: q.Adornment()},
		QueryLit: q,
		ByPred:   make(map[string][]int),
		Derived:  info.Derived,
	}

	seen := map[string]bool{ap.Query.Key(): true}
	work := []Pred{ap.Query}
	nextID := 0
	for len(work) > 0 {
		pa := work[0]
		work = work[1:]
		for _, r := range prog.RulesFor(pa.Name) {
			nextID++
			adorned, err := adornRule(info, r, pa, fmt.Sprintf("r%d", nextID))
			if err != nil {
				return nil, err
			}
			ap.ByPred[pa.Key()] = append(ap.ByPred[pa.Key()], len(ap.Rules))
			ap.Rules = append(ap.Rules, adorned)
			if dp, ok := adorned.DerivedPred(); ok && !seen[dp.Key()] {
				seen[dp.Key()] = true
				work = append(work, dp)
			}
		}
	}
	return ap, nil
}

// adornRule applies the information-passing split to one rule under the
// head adornment pa.Adorn.
func adornRule(info *analysis.Info, r ast.Rule, pa Pred, id string) (Rule, error) {
	if len(pa.Adorn) != r.Head.Arity() {
		return Rule{}, fmt.Errorf("adorn: adornment %s does not match arity of %s", pa.Adorn, r.Head.Pred)
	}
	out := Rule{ID: id, Head: r.Head, HeadAdorn: pa.Adorn, Orig: r}

	// Locate the (unique) derived literal; everything else participates
	// in the connectivity analysis. Built-ins take part in connectivity —
	// in the flight example is_deptime(DT1) is connected to flight(...)
	// only through the comparison AT1 < DT1.
	var rest []ast.Literal
	for _, l := range r.Body {
		if !l.IsBuiltin() && info.Derived[l.Pred] {
			lit := l
			out.Derived = &lit
			continue
		}
		rest = append(rest, l)
	}

	boundHead := boundHeadVars(r.Head, pa.Adorn)

	if out.Derived == nil {
		out.AllBody = rest
		return out, nil
	}

	// Connected components of the remaining body literals under shared
	// variables. The in group collects the components connected to a
	// bound head variable (conditions 2–4); the paper states condition
	// (3) for a single component — the common case of one bound argument
	// — and we generalize to every in-group component being connected to
	// a bound variable, which is what queries binding several arguments
	// (e.g. sg(a, b)) produce.
	comp := components(rest)
	var in, outLits []ast.Literal
	for _, lits := range comp {
		touched := false
		for _, l := range lits {
			if touchesVars(l, boundHead) {
				touched = true
				break
			}
		}
		if touched {
			in = append(in, lits...)
		} else {
			outLits = append(outLits, lits...)
		}
	}

	// Bindings originate from in-group atoms and bound head positions;
	// built-ins filter but never bind.
	inVars := map[string]bool{}
	for _, l := range in {
		if l.IsBuiltin() {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar() {
				inVars[a.Var] = true
			}
		}
	}
	for v := range boundHead {
		inVars[v] = true
	}

	// A built-in placed in the in group whose variables are not all bound
	// there cannot run during the in-r join; demote it to the out group.
	kept := in[:0]
	for _, l := range in {
		if l.IsBuiltin() && !allVarsIn(l, inVars) {
			outLits = append(outLits, l)
			continue
		}
		kept = append(kept, l)
	}
	in = kept

	// The derived literal's adornment (condition 5).
	var d strings.Builder
	for _, a := range out.Derived.Args {
		if !a.IsVar() || inVars[a.Var] {
			d.WriteByte('b')
		} else {
			d.WriteByte('f')
		}
	}
	out.DerivedAdorn = d.String()

	out.In = in
	out.Out = outLits
	return out, nil
}

// ChainCheck verifies the paper's chain-program condition: in every
// adorned rule with a derived literal, the variables of the in group are
// all different from the head variables designated free. It returns a
// descriptive error for the first violating rule.
func (ap *Program) ChainCheck() error {
	for _, r := range ap.Rules {
		if r.Derived == nil {
			continue
		}
		freeHead := map[string]bool{}
		for i, a := range r.Head.Args {
			if a.IsVar() && r.HeadAdorn[i] == 'f' {
				freeHead[a.Var] = true
			}
		}
		inAtomVars := map[string]bool{}
		for _, l := range r.In {
			if l.IsBuiltin() {
				continue
			}
			for _, a := range l.Args {
				if a.IsVar() {
					inAtomVars[a.Var] = true
				}
			}
		}
		for v := range inAtomVars {
			if freeHead[v] {
				return fmt.Errorf("adorn: not a chain program: rule %s for %s^%s binds free head variable %s in its in group",
					r.ID, r.Head.Pred, r.HeadAdorn, v)
			}
		}
	}
	return nil
}

// Render formats the adorned program structurally for golden tests.
func (ap *Program) Render() string {
	var b strings.Builder
	for _, r := range ap.Rules {
		b.WriteString(r.ID)
		b.WriteString(": ")
		b.WriteString(r.Head.Pred)
		b.WriteString("^")
		b.WriteString(r.HeadAdorn)
		if r.Derived != nil {
			fmt.Fprintf(&b, " [in=%d derived=%s^%s out=%d]", len(r.In), r.Derived.Pred, r.DerivedAdorn, len(r.Out))
		} else {
			fmt.Fprintf(&b, " [base body=%d]", len(r.AllBody))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BoundArgs returns the argument subsequence of lit at positions marked
// 'b' in adornment (the paper's X̄^b).
func BoundArgs(lit ast.Literal, adorn string) []ast.Term {
	var out []ast.Term
	for i, a := range lit.Args {
		if adorn[i] == 'b' {
			out = append(out, a)
		}
	}
	return out
}

// FreeArgs returns the argument subsequence at positions marked 'f' (the
// paper's X̄^f).
func FreeArgs(lit ast.Literal, adorn string) []ast.Term {
	var out []ast.Term
	for i, a := range lit.Args {
		if adorn[i] == 'f' {
			out = append(out, a)
		}
	}
	return out
}

func boundHeadVars(head ast.Literal, adorn string) map[string]bool {
	out := map[string]bool{}
	for i, a := range head.Args {
		if a.IsVar() && adorn[i] == 'b' {
			out[a.Var] = true
		}
	}
	return out
}

// components groups atoms into connected components under the "directly
// connected" (shared variable) relation, transitively.
func components(atoms []ast.Literal) [][]ast.Literal {
	n := len(atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if atoms[i].SharesVar(atoms[j]) {
				union(i, j)
			}
		}
	}
	groups := map[int][]ast.Literal{}
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]ast.Literal, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func touchesVars(l ast.Literal, vars map[string]bool) bool {
	for _, a := range l.Args {
		if a.IsVar() && vars[a.Var] {
			return true
		}
	}
	return false
}

func varsOf(lits []ast.Literal) map[string]bool {
	out := map[string]bool{}
	for _, l := range lits {
		for _, a := range l.Args {
			if a.IsVar() {
				out[a.Var] = true
			}
		}
	}
	return out
}

func allVarsIn(l ast.Literal, vars map[string]bool) bool {
	for _, a := range l.Args {
		if a.IsVar() && !vars[a.Var] {
			return false
		}
	}
	return true
}
