package ast

import (
	"testing"

	"chainlog/internal/symtab"
)

func TestTermBasics(t *testing.T) {
	st := symtab.NewTable()
	v := V("X")
	c := C(st.Intern("a"))
	if !v.IsVar() || c.IsVar() {
		t.Fatal("IsVar misreports")
	}
	if v.Render(st) != "X" || c.Render(st) != "a" {
		t.Fatal("Render misreports")
	}
	if c.Render(nil) == "" {
		t.Fatal("Render(nil) empty")
	}
}

func TestLiteralHelpers(t *testing.T) {
	st := symtab.NewTable()
	l := Atom("p", V("X"), C(st.Intern("a")), V("X"), V("Y"))
	if l.Arity() != 4 || l.IsBuiltin() || l.IsGround() {
		t.Fatal("basic literal accessors broken")
	}
	vs := l.Vars(nil, map[string]bool{})
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Fatalf("Vars = %v", vs)
	}
	set := l.VarSet()
	if !set["X"] || !set["Y"] || set["a"] {
		t.Fatalf("VarSet = %v", set)
	}
	g := Atom("p", C(st.Intern("a")))
	if !g.IsGround() {
		t.Fatal("ground literal misreported")
	}
	b := Builtin(OpLT, V("X"), V("Z"))
	if !b.IsBuiltin() || b.Op.String() != "<" {
		t.Fatal("builtin accessors broken")
	}
	if !l.SharesVar(b) {
		t.Fatal("SharesVar misses X")
	}
	if g.SharesVar(b) {
		t.Fatal("SharesVar false positive")
	}
}

func TestRuleRender(t *testing.T) {
	st := symtab.NewTable()
	r := Rule{
		Head: Atom("sg", V("X"), V("Y")),
		Body: []Literal{
			Atom("up", V("X"), V("X1")),
			Atom("sg", V("X1"), V("Y1")),
			Atom("down", V("Y1"), V("Y")),
		},
	}
	want := "sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y)."
	if got := r.Render(st); got != want {
		t.Fatalf("Render = %q", got)
	}
	fact := Rule{Head: Atom("edge", C(st.Intern("a")), C(st.Intern("b")))}
	if got := fact.Render(st); got != "edge(a,b)." {
		t.Fatalf("fact Render = %q", got)
	}
}

func TestProgramDerivedBase(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{Head: Atom("tc", V("X"), V("Y")), Body: []Literal{Atom("edge", V("X"), V("Y"))}},
		{Head: Atom("tc", V("X"), V("Z")), Body: []Literal{Atom("edge", V("X"), V("Y")), Atom("tc", V("Y"), V("Z"))}},
		{Head: Atom("refl", V("X"), V("X"))}, // empty-body identity rule
	}}
	derived := prog.Derived()
	if len(derived) != 2 || derived[0] != "refl" || derived[1] != "tc" {
		t.Fatalf("Derived = %v", derived)
	}
	base := prog.Base()
	if len(base) != 1 || base[0] != "edge" {
		t.Fatalf("Base = %v", base)
	}
	if rules := prog.RulesFor("tc"); len(rules) != 2 {
		t.Fatalf("RulesFor(tc) = %d", len(rules))
	}
}

func TestAritiesConflict(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{Head: Atom("p", V("X")), Body: []Literal{Atom("q", V("X"), V("X"))}},
		{Head: Atom("p", V("X"), V("Y")), Body: []Literal{Atom("q", V("X"), V("Y"))}},
	}}
	if _, err := prog.Arities(); err == nil {
		t.Fatal("arity conflict not detected")
	}
	ok := &Program{Rules: []Rule{
		{Head: Atom("p", V("X")), Body: []Literal{Atom("q", V("X"), V("X"))}},
	}}
	ar, err := ok.Arities()
	if err != nil || ar["p"] != 1 || ar["q"] != 2 {
		t.Fatalf("Arities = %v, %v", ar, err)
	}
}

func TestQueryAdornment(t *testing.T) {
	st := symtab.NewTable()
	q := Query{Literal: Atom("cnx", C(st.Intern("hel")), C(st.Intern("900")), V("D"), V("AT"))}
	if q.Adornment() != "bbff" {
		t.Fatalf("Adornment = %s", q.Adornment())
	}
}

func TestBodyAtomsFiltersBuiltins(t *testing.T) {
	r := Rule{
		Head: Atom("p", V("X")),
		Body: []Literal{Atom("q", V("X"), V("Y")), Builtin(OpLT, V("X"), V("Y"))},
	}
	if got := r.BodyAtoms(); len(got) != 1 || got[0].Pred != "q" {
		t.Fatalf("BodyAtoms = %v", got)
	}
	if hv := r.HeadVars(); !hv["X"] || len(hv) != 1 {
		t.Fatalf("HeadVars = %v", hv)
	}
}
