// Package ast defines the abstract syntax of Datalog programs: terms,
// literals, rules and programs, together with the structural helpers
// (variable sets, groundness, connectivity) the analyses in this module
// need.
//
// Constants are interned symbols (symtab.Sym); variables are identified by
// name within a rule. A program separates its intensional database (rules
// with non-empty bodies) from its extensional database (ground facts).
package ast

import (
	"fmt"
	"sort"
	"strings"

	"chainlog/internal/symtab"
)

// Term is a variable or a constant.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var string
	// Const is the interned constant; meaningful only when Var == "".
	Const symtab.Sym
}

// V constructs a variable term.
func V(name string) Term { return Term{Var: name} }

// C constructs a constant term.
func C(s symtab.Sym) Term { return Term{Const: s} }

// Hole constructs a parameter placeholder term, written '?' in query
// templates. A hole behaves like a bound constant for adornment and
// classification purposes; its value is supplied when the prepared query
// runs. The zero Term is a hole — real constants always intern to a
// non-None Sym, and variables have a name.
func Hole() Term { return Term{} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// IsHole reports whether t is a parameter placeholder.
func (t Term) IsHole() bool { return t.Var == "" && t.Const == symtab.None }

// Render formats the term using the given symbol table (nil is allowed
// for variables). Constants whose names would not scan back as a single
// lower-case identifier or number are single-quoted, so rendered programs
// reparse to themselves.
func (t Term) Render(st *symtab.Table) string {
	if t.IsVar() {
		return t.Var
	}
	if t.IsHole() {
		return "?"
	}
	if st == nil {
		return fmt.Sprintf("#%d", int(t.Const))
	}
	name := st.Name(t.Const)
	if ConstNeedsQuoting(name) {
		return "'" + name + "'"
	}
	return name
}

// ConstNeedsQuoting reports whether a constant name must be quoted to
// survive a render → parse round trip: anything that is not a plain
// lower-case ASCII identifier or a well-formed integer. Exported so
// bulk writers (fact dumps) can stream names straight into a buffer
// instead of going through Render's returned string.
func ConstNeedsQuoting(name string) bool {
	if name == "" {
		return true
	}
	c := name[0]
	switch {
	case c >= '0' && c <= '9', c == '-':
		// Must be a pure integer; "007x" or "-" alone would mis-lex.
		digits := name
		if c == '-' {
			digits = name[1:]
			if digits == "" {
				return true
			}
		}
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				return true
			}
		}
		return false
	case c >= 'a' && c <= 'z':
		for i := 1; i < len(name); i++ {
			c := name[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
			if !ok {
				return true
			}
		}
		return false
	}
	return true // upper case, '_', non-ASCII lead, punctuation, ...
}

// BuiltinOp identifies the comparison built-ins allowed in rule bodies.
// The paper permits built-in predicates with unrestricted domains only when
// all their variables also appear in base literals of the same rule; the
// safety check in internal/analysis enforces that.
type BuiltinOp int

const (
	OpNone BuiltinOp = iota
	OpLT             // <
	OpLE             // <=
	OpGT             // >
	OpGE             // >=
	OpEQ             // =
	OpNE             // !=
)

func (op BuiltinOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	}
	return "?"
}

// Literal is an atom p(t1,...,tn) or a built-in comparison t1 op t2.
type Literal struct {
	Pred string // predicate name; empty for built-ins
	Op   BuiltinOp
	Args []Term
}

// Atom constructs an ordinary literal.
func Atom(pred string, args ...Term) Literal {
	return Literal{Pred: pred, Args: args}
}

// Builtin constructs a comparison literal.
func Builtin(op BuiltinOp, left, right Term) Literal {
	return Literal{Op: op, Args: []Term{left, right}}
}

// IsBuiltin reports whether l is a comparison literal.
func (l Literal) IsBuiltin() bool { return l.Op != OpNone }

// Arity returns the number of arguments.
func (l Literal) Arity() int { return len(l.Args) }

// Vars appends the variable names occurring in l to dst, in order of first
// occurrence, without duplicates relative to seen.
func (l Literal) Vars(dst []string, seen map[string]bool) []string {
	for _, a := range l.Args {
		if a.IsVar() && !seen[a.Var] {
			seen[a.Var] = true
			dst = append(dst, a.Var)
		}
	}
	return dst
}

// VarSet returns the set of variable names occurring in l.
func (l Literal) VarSet() map[string]bool {
	s := make(map[string]bool, len(l.Args))
	for _, a := range l.Args {
		if a.IsVar() {
			s[a.Var] = true
		}
	}
	return s
}

// IsGround reports whether all arguments are constants.
func (l Literal) IsGround() bool {
	for _, a := range l.Args {
		if a.IsVar() {
			return false
		}
	}
	return true
}

// SharesVar reports whether l and m have a common variable (the paper's
// "directly connected" relation on body literals).
func (l Literal) SharesVar(m Literal) bool {
	for _, a := range l.Args {
		if !a.IsVar() {
			continue
		}
		for _, b := range m.Args {
			if b.IsVar() && a.Var == b.Var {
				return true
			}
		}
	}
	return false
}

// Render formats the literal.
func (l Literal) Render(st *symtab.Table) string {
	if l.IsBuiltin() {
		return l.Args[0].Render(st) + " " + l.Op.String() + " " + l.Args[1].Render(st)
	}
	if len(l.Args) == 0 {
		return l.Pred
	}
	parts := make([]string, len(l.Args))
	for i, a := range l.Args {
		parts[i] = a.Render(st)
	}
	return l.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Rule is head :- body. A fact is a rule with an empty body and a ground
// head, but facts are normally stored in the EDB rather than as rules.
type Rule struct {
	Head Literal
	Body []Literal
}

// Render formats the rule.
func (r Rule) Render(st *symtab.Table) string {
	if len(r.Body) == 0 {
		return r.Head.Render(st) + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.Render(st)
	}
	return r.Head.Render(st) + " :- " + strings.Join(parts, ", ") + "."
}

// HeadVars returns the set of variables in the head.
func (r Rule) HeadVars() map[string]bool { return r.Head.VarSet() }

// BodyAtoms returns the non-built-in body literals.
func (r Rule) BodyAtoms() []Literal {
	out := make([]Literal, 0, len(r.Body))
	for _, l := range r.Body {
		if !l.IsBuiltin() {
			out = append(out, l)
		}
	}
	return out
}

// Program is a set of rules (the intensional database) plus ground facts
// (the extensional database, held separately in internal/edb when
// evaluating). Derived and base predicates must be disjoint: no base
// predicate may appear in the head of a rule with a non-empty body.
type Program struct {
	Rules []Rule
}

// Derived returns the sorted set of derived predicate names (heads of
// rules). Ground facts live in the extensional store, never in Rules, so
// every rule head — including empty-body rules such as the identity rule
// p(X,X) :- and magic-set seed rules — names a derived predicate.
func (p *Program) Derived() []string {
	return sortedKeys(p.DerivedSet())
}

// DerivedSet returns the set of derived predicate names.
func (p *Program) DerivedSet() map[string]bool {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	return set
}

// Base returns the sorted set of predicate names that appear in bodies (or
// in facts) but are never derived.
func (p *Program) Base() []string {
	derived := p.DerivedSet()
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if !l.IsBuiltin() && !derived[l.Pred] {
				set[l.Pred] = true
			}
		}
	}
	return sortedKeys(set)
}

// RulesFor returns the rules whose head predicate is pred, in program
// order.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// Arities returns the arity of each predicate mentioned in the program.
// It returns an error if a predicate is used with two different arities.
func (p *Program) Arities() (map[string]int, error) {
	ar := make(map[string]int)
	check := func(l Literal) error {
		if l.IsBuiltin() {
			return nil
		}
		if prev, ok := ar[l.Pred]; ok && prev != l.Arity() {
			return fmt.Errorf("predicate %s used with arities %d and %d", l.Pred, prev, l.Arity())
		}
		ar[l.Pred] = l.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if err := check(l); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}

// Render formats the whole program.
func (p *Program) Render(st *symtab.Table) string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.Render(st))
		b.WriteByte('\n')
	}
	return b.String()
}

// Query is a literal with some arguments possibly instantiated. The answer
// to q(x̄) is the set of instantiations of the variables in x̄ making the
// literal true.
type Query struct {
	Literal
}

// Adornment returns the paper's bound/free adornment string for the query:
// 'b' at positions filled by constants, 'f' at variable positions.
func (q Query) Adornment() string {
	b := make([]byte, len(q.Args))
	for i, a := range q.Args {
		if a.IsVar() {
			b[i] = 'f'
		} else {
			b[i] = 'b'
		}
	}
	return string(b)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
