package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served", Labels("endpoint", "query", "code", "200"))
	c.Inc()
	c.Add(2)
	g := r.Gauge("in_flight", "concurrent requests", "")
	g.Inc()
	g.Inc()
	g.Dec()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total requests served",
		"# TYPE requests_total counter",
		`requests_total{endpoint="query",code="200"} 3`,
		"# TYPE in_flight gauge",
		"in_flight 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterSeriesReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels("code", "200"))
	b := r.Counter("x_total", "", Labels("code", "200"))
	if a != b {
		t.Fatal("same name+labels must return the same series")
	}
	c := r.Counter("x_total", "", Labels("code", "504"))
	if a == c {
		t.Fatal("distinct labels must return distinct series")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", Labels("endpoint", "query"), []float64{0.01, 0.1, 1})
	h.Observe(0.005) // first bucket
	h.Observe(0.05)  // second
	h.Observe(0.5)   // third
	h.Observe(5)     // +Inf
	h.Observe(0.1)   // boundary lands in its own bucket (le="0.1")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{endpoint="query",le="0.01"} 1`,
		`latency_seconds_bucket{endpoint="query",le="0.1"} 3`,
		`latency_seconds_bucket{endpoint="query",le="1"} 4`,
		`latency_seconds_bucket{endpoint="query",le="+Inf"} 5`,
		`latency_seconds_count{endpoint="query"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.5
	r.GaugeFunc("cache_size", "entries", "", func() float64 { return v })
	v = 42

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cache_size 42") {
		t.Errorf("GaugeFunc must read at scrape time:\n%s", b.String())
	}
}

// TestConcurrentObserve exercises the lock-free paths under the race
// detector.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	h := r.Histogram("h_seconds", "", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
