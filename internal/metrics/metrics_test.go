package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestGrowthExponentLinear(t *testing.T) {
	ns := []int{64, 128, 256, 512}
	work := []float64{64 * 3, 128 * 3, 256 * 3, 512 * 3}
	k := GrowthExponent(ns, work)
	if math.Abs(k-1) > 0.01 {
		t.Fatalf("k = %f, want ~1", k)
	}
	if Class(k) != "n" {
		t.Fatalf("Class = %s", Class(k))
	}
}

func TestGrowthExponentQuadratic(t *testing.T) {
	ns := []int{64, 128, 256}
	work := make([]float64, len(ns))
	for i, n := range ns {
		work[i] = 0.5 * float64(n) * float64(n)
	}
	k := GrowthExponent(ns, work)
	if math.Abs(k-2) > 0.01 {
		t.Fatalf("k = %f, want ~2", k)
	}
	if Class(k) != "n^2" {
		t.Fatalf("Class = %s", Class(k))
	}
}

func TestGrowthExponentDegenerate(t *testing.T) {
	if !math.IsNaN(GrowthExponent([]int{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(GrowthExponent(nil, nil)) {
		t.Fatal("empty should be NaN")
	}
	if Class(math.NaN()) != "?" {
		t.Fatal("NaN class")
	}
	// Same n twice: zero denominator.
	if !math.IsNaN(GrowthExponent([]int{4, 4}, []float64{2, 2})) {
		t.Fatal("degenerate x range should be NaN")
	}
}

func TestClassBoundaries(t *testing.T) {
	if Class(1.5) == "n" || Class(1.5) == "n^2" {
		t.Fatalf("Class(1.5) = %s", Class(1.5))
	}
	if got := Class(2.8); !strings.HasPrefix(got, "n^2.8") {
		t.Fatalf("Class(2.8) = %s", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Header: []string{"sample", "n", "work"}}
	tb.Add("a", 64, 3.14159)
	tb.Add("bbbb", 128, 2)
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d\n%s", len(lines), s)
	}
	if !strings.Contains(lines[2], "3.14") {
		t.Fatalf("float formatting: %s", lines[2])
	}
	if !strings.Contains(lines[0], "sample") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/separator missing:\n%s", s)
	}
}
