// Package metrics provides the small numeric helpers the benchmark
// harness uses to turn raw work counts into the paper's complexity
// statements: log-log growth-exponent fits over a parameter sweep, and
// tidy fixed-width table rendering.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// GrowthExponent fits work ≈ c·n^k over the sweep by least squares in
// log-log space and returns k. A linear algorithm fits k≈1, a quadratic
// one k≈2. It returns NaN when fewer than two valid points exist.
func GrowthExponent(ns []int, work []float64) float64 {
	var xs, ys []float64
	for i := range ns {
		if ns[i] > 0 && work[i] > 0 {
			xs = append(xs, math.Log(float64(ns[i])))
			ys = append(ys, math.Log(work[i]))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Class maps a fitted exponent to the complexity classes the paper's
// table reports: "n" for ~linear, "n^2" for ~quadratic, and the raw
// exponent otherwise.
func Class(k float64) string {
	switch {
	case math.IsNaN(k):
		return "?"
	case k < 1.3:
		return "n"
	case k < 1.75:
		return fmt.Sprintf("n^%.1f", k)
	case k < 2.35:
		return "n^2"
	default:
		return fmt.Sprintf("n^%.1f", k)
	}
}

// Table renders rows with a header in fixed-width columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
