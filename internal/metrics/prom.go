package metrics

// Serving metrics: the counters, gauges and histograms chainlogd exposes
// on GET /metrics, with Prometheus text-exposition rendering. The
// implementation is deliberately tiny — lock-free atomics on the hot
// path, one mutex around registration — so the serving layer does not
// pull an external metrics dependency into the module.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, plus a sum
// and a count, matching the Prometheus histogram exposition. Observe is
// lock-free: one atomic add on the smallest bucket whose upper bound
// admits the value, one on the count, and a CAS loop folding the float
// sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum
}

// DefBuckets are latency buckets in seconds, spanning 100µs to 10s —
// wide enough for a traversal that runs to a deadline.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram returns a histogram over the given ascending upper
// bounds; nil means DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nue := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nue) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// metricKind tags a registered family for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
	kindCounterFunc
)

// series is one exposed time series: a family member with a fixed label
// set.
type series struct {
	labels string // rendered label block, `{a="b"}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label blocks in registration order
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Metric lookups after registration are lock-free
// (callers hold the returned *Counter/*Gauge/*Histogram); the registry
// lock guards only registration and rendering.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Labels renders a label set deterministically: pairs are (name, value)
// in the given order. Values are quoted.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(pairs[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// familyFor returns (creating if needed) the family, enforcing one kind
// per name.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as two different kinds", name))
	}
	return f
}

// seriesFor returns (creating if needed) the series for a label block.
func (f *family) seriesFor(labels string) *series {
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter registers (or fetches) a counter series. labels is a rendered
// label block from Labels, or "".
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindCounter).seriesFor(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindGauge).seriesFor(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is read at scrape time —
// for values another subsystem already tracks (plan-cache stats, store
// sizes).
func (r *Registry) GaugeFunc(name, help, labels string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyFor(name, help, kindGaugeFunc).seriesFor(labels).f = f
}

// CounterFunc registers a counter series whose value is read at scrape
// time — for monotonic totals another subsystem already tracks (the
// engine's plan re-optimization count).
func (r *Registry) CounterFunc(name, help, labels string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyFor(name, help, kindCounterFunc).seriesFor(labels).f = f
}

// Histogram registers (or fetches) a histogram series; nil bounds means
// DefBuckets.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.familyFor(name, help, kindHistogram).seriesFor(labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// WriteText renders every registered family in the Prometheus text
// exposition format, families in registration order. The rendering
// happens into a buffer so the registry lock — which every request
// completion takes to look up its status counter — is never held across
// a write to a (possibly slow) scrape connection.
func (r *Registry) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	if err := r.renderLocked(&buf); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func (r *Registry) renderLocked(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, typ); err != nil {
			return err
		}
		for _, labels := range f.order {
			s := f.series[labels]
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, labels, s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, labels, s.g.Value())
			case kindGaugeFunc, kindCounterFunc:
				_, err = fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(s.f()))
			case kindHistogram:
				err = writeHistogram(w, name, labels, s.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count, splicing the le label into any existing label block.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	withLE := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sum.Load())
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, labels, formatFloat(sum), name, labels, h.count.Load())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
