// Package regimage evaluates derived-free ("regular") relational
// expressions node-at-a-time: given a source of base relations and an
// expression e, it computes images of single terms or term sets under the
// relation denoted by e by traversing the automaton M(e).
//
// This is the set-at-a-time primitive shared by the comparison methods
// (Henschen–Naqvi and counting) and by the cyclic-bound computation: all
// of them repeatedly apply e1, e0 and e2 images for equations of the
// shape p = e0 ∪ e1·p·e2.
package regimage

import (
	"slices"

	"chainlog/internal/automaton"
	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

// probeStat accumulates raw-path probe statistics for one transition
// between flushes.
type probeStat struct {
	lookups, retrieved int64
}

// Evaluator computes images under one compiled expression.
//
// When the source exposes chaineval.RelationResolver (StoreSource
// does), every base-predicate transition is resolved to its concrete
// CSR relation once at compile time and probed through the raw
// (uncounted) adjacency accessors — no per-probe name hashing, no
// per-probe atomics. The probe statistics are accumulated locally and
// flushed to the owning CounterSet once per public call, so retrieval
// accounting (Stats.FactsConsulted, the optimizer's work feedback)
// sees exactly the same totals as the by-name counted path.
type Evaluator struct {
	m   *automaton.NFA
	src chaineval.Source
	// rels[id] is the CSR relation behind transition id; nil entries
	// (unresolvable predicate, or no resolver) use the by-name counted
	// Source path, which performs its own accounting.
	rels  []*edb.Relation
	stats []probeStat
}

// New compiles e (which must not mention derived predicates) for the
// given source.
func New(e expr.Expr, src chaineval.Source) *Evaluator {
	ev := &Evaluator{m: automaton.Compile(e), src: src}
	if rr, ok := src.(chaineval.RelationResolver); ok {
		n := 0
		for q := 0; q < ev.m.NumStates(); q++ {
			ev.m.Out(q, func(id int, _ automaton.Trans) {
				if id >= n {
					n = id + 1
				}
			})
		}
		ev.rels = make([]*edb.Relation, n)
		ev.stats = make([]probeStat, n)
		for q := 0; q < ev.m.NumStates(); q++ {
			ev.m.Out(q, func(id int, t automaton.Trans) {
				if !t.Label.IsID() {
					ev.rels[id] = rr.ResolveRelation(t.Label.Pred)
				}
			})
		}
	}
	return ev
}

// probe returns the adjacency of u across transition id, through the
// resolved CSR relation when available.
func (ev *Evaluator) probe(id int, label automaton.Label, u symtab.Sym) []symtab.Sym {
	if ev.rels != nil {
		if rel := ev.rels[id]; rel != nil {
			var out []symtab.Sym
			if label.Inv {
				out = rel.PredecessorsRaw(u)
			} else {
				out = rel.SuccessorsRaw(u)
			}
			s := &ev.stats[id]
			s.lookups++
			s.retrieved += int64(len(out))
			return out
		}
	}
	if label.Inv {
		return ev.src.Predecessors(label.Pred, u)
	}
	return ev.src.Successors(label.Pred, u)
}

// flush publishes accumulated raw-path statistics to the owning
// stores' counters, one batched add per touched transition.
func (ev *Evaluator) flush() {
	for i := range ev.stats {
		if s := &ev.stats[i]; s.lookups != 0 || s.retrieved != 0 {
			ev.rels[i].Counters().AddBatch(uint32(i), s.lookups, s.retrieved)
			*s = probeStat{}
		}
	}
}

type node struct {
	q int
	u symtab.Sym
}

// Image returns the sorted image of u: all v with e(u, v).
func (ev *Evaluator) Image(u symtab.Sym) []symtab.Sym {
	return ev.ImageSet([]symtab.Sym{u})
}

// ImageSet returns the sorted union of images of the given terms. The
// traversal memoizes (state, term) nodes within one call, so overlapping
// paths from different sources are walked once per call — but not across
// calls (which is exactly the Henschen–Naqvi drawback the paper's sample
// (c) exposes; the comparison methods call ImageSet once per level).
func (ev *Evaluator) ImageSet(us []symtab.Sym) []symtab.Sym {
	if ev.stats != nil {
		defer ev.flush()
	}
	G := make(map[node]bool)
	var stack []node
	out := make(map[symtab.Sym]bool)
	visit := func(n node) {
		if !G[n] {
			G[n] = true
			stack = append(stack, n)
			if n.q == ev.m.Final {
				out[n.u] = true
			}
		}
	}
	for _, u := range us {
		visit(node{ev.m.Start, u})
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ev.m.Out(n.q, func(id int, t automaton.Trans) {
			if t.Label.IsID() {
				visit(node{t.To, n.u})
				return
			}
			for _, v := range ev.probe(id, t.Label, n.u) {
				visit(node{t.To, v})
			}
		})
	}
	return sortedSyms(out)
}

// Closure returns the set of terms reachable from starts by zero or more
// applications of e (the accessible-node sets D1/D2 of the cyclic bound).
func (ev *Evaluator) Closure(starts []symtab.Sym) []symtab.Sym {
	seen := make(map[symtab.Sym]bool)
	work := append([]symtab.Sym(nil), starts...)
	for _, s := range starts {
		seen[s] = true
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range ev.Image(u) {
			if !seen[v] {
				seen[v] = true
				work = append(work, v)
			}
		}
	}
	out := make([]symtab.Sym, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}

func sortedSyms(set map[symtab.Sym]bool) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}
