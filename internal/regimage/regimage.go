// Package regimage evaluates derived-free ("regular") relational
// expressions node-at-a-time: given a source of base relations and an
// expression e, it computes images of single terms or term sets under the
// relation denoted by e by traversing the automaton M(e).
//
// This is the set-at-a-time primitive shared by the comparison methods
// (Henschen–Naqvi and counting) and by the cyclic-bound computation: all
// of them repeatedly apply e1, e0 and e2 images for equations of the
// shape p = e0 ∪ e1·p·e2.
package regimage

import (
	"slices"

	"chainlog/internal/automaton"
	"chainlog/internal/chaineval"
	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

// Evaluator computes images under one compiled expression.
type Evaluator struct {
	m   *automaton.NFA
	src chaineval.Source
}

// New compiles e (which must not mention derived predicates) for the
// given source.
func New(e expr.Expr, src chaineval.Source) *Evaluator {
	return &Evaluator{m: automaton.Compile(e), src: src}
}

type node struct {
	q int
	u symtab.Sym
}

// Image returns the sorted image of u: all v with e(u, v).
func (ev *Evaluator) Image(u symtab.Sym) []symtab.Sym {
	return ev.ImageSet([]symtab.Sym{u})
}

// ImageSet returns the sorted union of images of the given terms. The
// traversal memoizes (state, term) nodes within one call, so overlapping
// paths from different sources are walked once per call — but not across
// calls (which is exactly the Henschen–Naqvi drawback the paper's sample
// (c) exposes; the comparison methods call ImageSet once per level).
func (ev *Evaluator) ImageSet(us []symtab.Sym) []symtab.Sym {
	G := make(map[node]bool)
	var stack []node
	out := make(map[symtab.Sym]bool)
	visit := func(n node) {
		if !G[n] {
			G[n] = true
			stack = append(stack, n)
			if n.q == ev.m.Final {
				out[n.u] = true
			}
		}
	}
	for _, u := range us {
		visit(node{ev.m.Start, u})
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ev.m.Out(n.q, func(_ int, t automaton.Trans) {
			switch {
			case t.Label.IsID():
				visit(node{t.To, n.u})
			case t.Label.Inv:
				for _, v := range ev.src.Predecessors(t.Label.Pred, n.u) {
					visit(node{t.To, v})
				}
			default:
				for _, v := range ev.src.Successors(t.Label.Pred, n.u) {
					visit(node{t.To, v})
				}
			}
		})
	}
	return sortedSyms(out)
}

// Closure returns the set of terms reachable from starts by zero or more
// applications of e (the accessible-node sets D1/D2 of the cyclic bound).
func (ev *Evaluator) Closure(starts []symtab.Sym) []symtab.Sym {
	seen := make(map[symtab.Sym]bool)
	work := append([]symtab.Sym(nil), starts...)
	for _, s := range starts {
		seen[s] = true
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range ev.Image(u) {
			if !seen[v] {
				seen[v] = true
				work = append(work, v)
			}
		}
	}
	out := make([]symtab.Sym, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}

func sortedSyms(set map[symtab.Sym]bool) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}
