package regimage

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/expr"
	"chainlog/internal/rel"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func TestImageBasics(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")
	store.Insert("e", a, b)
	store.Insert("e", b, c)
	src := chaineval.StoreSource{Store: store}

	ev := New(expr.MustParse("e"), src)
	if got := ev.Image(a); len(got) != 1 || got[0] != b {
		t.Fatalf("e(a) = %v", got)
	}
	ev = New(expr.MustParse("e.e"), src)
	if got := ev.Image(a); len(got) != 1 || got[0] != c {
		t.Fatalf("e.e(a) = %v", got)
	}
	ev = New(expr.MustParse("e*"), src)
	if got := ev.Image(a); len(got) != 3 {
		t.Fatalf("e*(a) = %v", got)
	}
	ev = New(expr.MustParse("e~"), src)
	if got := ev.Image(c); len(got) != 1 || got[0] != b {
		t.Fatalf("e~(c) = %v", got)
	}
	ev = New(expr.MustParse("id"), src)
	if got := ev.Image(a); len(got) != 1 || got[0] != a {
		t.Fatalf("id(a) = %v", got)
	}
	ev = New(expr.MustParse("0"), src)
	if got := ev.Image(a); len(got) != 0 {
		t.Fatalf("0(a) = %v", got)
	}
}

func TestImageSetUnionsSources(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	a, b, c, d := st.Intern("a"), st.Intern("b"), st.Intern("c"), st.Intern("d")
	store.Insert("e", a, c)
	store.Insert("e", b, d)
	ev := New(expr.MustParse("e"), chaineval.StoreSource{Store: store})
	got := ev.ImageSet([]symtab.Sym{a, b})
	if len(got) != 2 {
		t.Fatalf("ImageSet = %v", got)
	}
}

func TestClosure(t *testing.T) {
	st := symtab.NewTable()
	w := workload.Cyclic(st, 3, 4)
	ev := New(expr.MustParse("up"), chaineval.StoreSource{Store: w.Store})
	cl := ev.Closure([]symtab.Sym{w.Query})
	if len(cl) != 3 {
		t.Fatalf("up-closure on a 3-cycle = %d nodes", len(cl))
	}
}

// Property: Image agrees with the materialized oracle on random data.
func TestImageMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 15, 0.5, seed)
		src := chaineval.StoreSource{Store: w.Store}
		up := relFrom(w.Store, "up")
		down := relFrom(w.Store, "down")
		flat := relFrom(w.Store, "flat")
		env := rel.Env{"up": up, "down": down, "flat": flat}
		universe := activeDomain(w.Store)

		for _, es := range []string{"up", "up.flat", "up*.down", "flat U up.down"} {
			e := expr.MustParse(es)
			ev := New(e, src)
			oracle := rel.Eval(e, env, universe)
			for _, u := range universe {
				if !reflect.DeepEqual(ev.Image(u), oracle.Successors(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func relFrom(store *edb.Store, pred string) *rel.Rel {
	out := rel.New()
	r := store.Relation(pred)
	if r == nil {
		return out
	}
	for i := 0; i < r.Len(); i++ {
		tu := r.Tuple(i)
		out.Add(tu[0], tu[1])
	}
	return out
}

func activeDomain(store *edb.Store) []symtab.Sym {
	set := map[symtab.Sym]bool{}
	for _, name := range store.Relations() {
		r := store.Relation(name)
		for i := 0; i < r.Len(); i++ {
			for _, s := range r.Tuple(i) {
				set[s] = true
			}
		}
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	return out
}
