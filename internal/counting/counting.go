// Package counting implements the counting method [Bancilhon, Maier,
// Sagiv, Ullman 1986; Saccà, Zaniolo 1986] for linear equations of the
// shape p = e0 ∪ e1·p·e2 and queries p(a, Y).
//
// The method indexes the magic set by distance from the query constant
// ("counting"): the upward pass computes the level sets S_i = e1^i(a); the
// flat pass computes F_i = e0(S_i); and the downward pass consumes the
// counts in reverse, D_h = F_h, D_{i} = e2(D_{i+1}) ∪ F_i, so every
// down-step is taken once per level rather than once per (level, start)
// pair. The answer is D_0.
//
// The paper notes that its graph-traversal algorithm has time bounds
// identical to counting — "the iterative construction of the automata
// EM(p,i) effectively includes the process of counting" — which is what
// experiment E1 verifies. The package also provides the reverse-counting
// variant, which runs the same scheme on the reversed equation (levels
// measured from the answer side); it is evaluable only with the second
// argument bound, so for p(a, Y) it enumerates candidate sources — the
// behavior the comparison table penalizes on one of the samples.
//
// For cyclic data the level sets never become empty; Levels bounds the
// pass as in Marchetti-Spaccamela et al., with the m·n accessible-node
// bound computed from D1/D2 closures.
package counting

import (
	"slices"

	"chainlog/internal/chaineval"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/regimage"
	"chainlog/internal/symtab"
)

// Stats reports the work performed.
type Stats struct {
	// Levels is the number of upward levels explored (h).
	Levels int
	// UpSize, FlatSize, DownSize are the summed sizes of the S_i, F_i and
	// D_i sets — the method's node-at-a-time work measure.
	UpSize, FlatSize, DownSize int
	// BoundStopped reports that the cyclic m·n bound ended the upward
	// pass.
	BoundStopped bool
}

// Evaluate runs the counting method for the equation shape and query
// constant. maxLevels > 0 overrides the automatic cyclic bound.
func Evaluate(shape equations.LinearShape, src chaineval.Source, a symtab.Sym, maxLevels int) ([]symtab.Sym, Stats) {
	e0 := regimage.New(shape.E0, src)
	e1 := regimage.New(shape.E1, src)
	e2 := regimage.New(shape.E2, src)

	var stats Stats
	limit := maxLevels
	if limit <= 0 {
		// m·n accessible-node bound (only needed when the data is
		// cyclic; on acyclic data the upward pass empties first).
		d1 := e1.Closure([]symtab.Sym{a})
		d2 := e2.Closure(e0.ImageSet(d1))
		limit = max(1, len(d1)) * max(1, len(d2))
	}

	// Upward pass: S_0 = {a}, S_{i+1} = e1(S_i).
	var levels [][]symtab.Sym
	cur := []symtab.Sym{a}
	for len(cur) > 0 {
		levels = append(levels, cur)
		stats.UpSize += len(cur)
		if len(levels) > limit {
			stats.BoundStopped = true
			break
		}
		cur = e1.ImageSet(cur)
	}
	stats.Levels = len(levels)

	// Flat pass: F_i = e0(S_i).
	flats := make([][]symtab.Sym, len(levels))
	for i, s := range levels {
		flats[i] = e0.ImageSet(s)
		stats.FlatSize += len(flats[i])
	}

	// Downward pass, deepest level first: D = e2(D) ∪ F_i.
	var down []symtab.Sym
	for i := len(levels) - 1; i >= 0; i-- {
		down = union(e2.ImageSet(down), flats[i])
		stats.DownSize += len(down)
	}
	return down, stats
}

// EvaluateReverse runs the reverse-counting variant for p(a, Y): the
// level structure is built from the answer side by reversing the
// equation (p = e0ʳ ∪ e2ʳ·p·e1ʳ over the inverse relations). Without a
// bound second argument the method must seed the reversed upward pass
// with every candidate answer-side node — the whole range of e0 reachable
// downward — which is what makes it asymmetric to counting on asymmetric
// samples.
func EvaluateReverse(shape equations.LinearShape, src chaineval.Source, a symtab.Sym, maxLevels int) ([]symtab.Sym, Stats) {
	rev := equations.LinearShape{
		E0: expr.Reverse(shape.E0),
		E1: expr.Reverse(shape.E2),
		E2: expr.Reverse(shape.E1),
	}
	// Candidate answer nodes: everything reachable from a through the
	// forward expressions (the potentially relevant range).
	e1 := regimage.New(shape.E1, src)
	e0 := regimage.New(shape.E0, src)
	e2 := regimage.New(shape.E2, src)
	d1 := e1.Closure([]symtab.Sym{a})
	candidates := e2.Closure(e0.ImageSet(d1))

	var answers []symtab.Sym
	var stats Stats
	for _, c := range candidates {
		// Reverse query: does a belong to pʳ(c, ·)?
		res, s := Evaluate(rev, src, c, maxLevels)
		stats.Levels = max(stats.Levels, s.Levels)
		stats.UpSize += s.UpSize
		stats.FlatSize += s.FlatSize
		stats.DownSize += s.DownSize
		for _, v := range res {
			if v == a {
				answers = append(answers, c)
				break
			}
		}
	}
	return answers, stats
}

func union(a, b []symtab.Sym) []symtab.Sym {
	set := make(map[symtab.Sym]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortSyms(out)
	return out
}

func sortSyms(s []symtab.Sym) {
	slices.Sort(s)
}
