package counting

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/naiveeval"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func sgShape(t *testing.T, st *symtab.Table) equations.LinearShape {
	t.Helper()
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		t.Fatal("sg does not decompose")
	}
	return shape
}

func TestCountingMatchesChainOnSamples(t *testing.T) {
	for _, gen := range []func(*symtab.Table, int) *workload.SG{
		workload.SampleA, workload.SampleB, workload.SampleC,
	} {
		st := symtab.NewTable()
		w := gen(st, 20)
		shape := sgShape(t, st)
		src := chaineval.StoreSource{Store: w.Store}
		got, stats := Evaluate(shape, src, w.Query, 0)

		res := parser.MustParse(workload.SGProgram, st)
		sys, _ := equations.Transform(res.Program)
		eng := chaineval.New(sys, src, chaineval.Options{})
		want, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want.Answers) {
			t.Fatalf("counting disagrees with chain engine: %v vs %v", got, want.Answers)
		}
		if stats.Levels == 0 {
			t.Fatal("no levels recorded")
		}
	}
}

func TestCountingCyclicBound(t *testing.T) {
	st := symtab.NewTable()
	w := workload.Cyclic(st, 3, 4)
	shape := sgShape(t, st)
	src := chaineval.StoreSource{Store: w.Store}
	got, stats := Evaluate(shape, src, w.Query, 0)
	if !stats.BoundStopped {
		t.Fatal("cyclic run should stop via the bound")
	}
	if len(got) != 4 {
		t.Fatalf("answers = %d, want 4", len(got))
	}
}

func TestReverseCountingAgrees(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 15, 0.4, seed)
		shape := sgShape(t, st)
		src := chaineval.StoreSource{Store: w.Store}
		fwd, _ := Evaluate(shape, src, w.Query, 0)
		rev, _ := EvaluateReverse(shape, src, w.Query, 0)
		return reflect.DeepEqual(fwd, rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The paper: "the time bounds for our method are identical to those of
// the counting method" — counting's work on sample (b) is quadratic, on
// samples (a) and (c) linear.
func TestCountingGrowthShapes(t *testing.T) {
	work := func(gen func(*symtab.Table, int) *workload.SG, n int) int {
		st := symtab.NewTable()
		w := gen(st, n)
		shape := sgShape(t, st)
		_, stats := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
		return stats.UpSize + stats.FlatSize + stats.DownSize
	}
	for _, tc := range []struct {
		name     string
		gen      func(*symtab.Table, int) *workload.SG
		min, max float64
	}{
		{"sampleA", workload.SampleA, 1.5, 2.6},
		{"sampleB", workload.SampleB, 3.0, 4.8},
		{"sampleC", workload.SampleC, 1.5, 2.6},
	} {
		w1 := work(tc.gen, 64)
		w2 := work(tc.gen, 128)
		ratio := float64(w2) / float64(w1)
		if ratio < tc.min || ratio > tc.max {
			t.Errorf("%s: work ratio = %.2f, want [%.1f, %.1f]", tc.name, ratio, tc.min, tc.max)
		}
	}
}

// TestCountingDifferentialOracle drives counting and reverse counting
// through random mutation schedules, checking every post-mutation
// evaluation against the textbook semi-naive reference — the same
// oracle the engine's differential fuzz uses.
func TestCountingDifferentialOracle(t *testing.T) {
	const nodes = 10
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := symtab.NewTable()
		res := parser.MustParse(workload.SGProgram, st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			t.Fatal(err)
		}
		shape, ok := sys.LinearDecompose("sg")
		if !ok {
			t.Fatal("sg does not decompose")
		}
		store := edb.NewStore(st)
		facts := naiveeval.NewFacts()
		a := st.Intern("n0")
		sym := func(i int) symtab.Sym { return st.Intern(fmt.Sprintf("n%d", i)) }
		preds := []string{"up", "flat", "down"}

		check := func(step int) {
			t.Helper()
			src := chaineval.StoreSource{Store: store}
			got, _ := Evaluate(shape, src, a, 0)
			q := parser.MustParseQuery("sg(n0, Y)", st)
			var want []symtab.Sym
			for _, row := range naiveeval.Answer(res.Program, facts, st, q) {
				want = append(want, row[0])
			}
			sortSyms(want)
			norm := func(s []symtab.Sym) []symtab.Sym {
				if len(s) == 0 {
					return nil
				}
				return s
			}
			if !reflect.DeepEqual(norm(got), norm(want)) {
				t.Fatalf("seed %d step %d: counting %v, oracle %v", seed, step, got, want)
			}
			rev, _ := EvaluateReverse(shape, src, a, 0)
			if !reflect.DeepEqual(norm(rev), norm(want)) {
				t.Fatalf("seed %d step %d: reverse counting %v, oracle %v", seed, step, rev, want)
			}
		}

		// Seed a few facts, then mutate and re-check at every step.
		for i := 0; i < 8; i++ {
			p := preds[rng.Intn(len(preds))]
			u, v := sym(rng.Intn(nodes)), sym(rng.Intn(nodes))
			store.Insert(p, u, v)
			facts.Assert(p, []symtab.Sym{u, v})
		}
		check(0)
		for step := 1; step <= 20; step++ {
			p := preds[rng.Intn(len(preds))]
			u, v := sym(rng.Intn(nodes)), sym(rng.Intn(nodes))
			if rng.Intn(3) == 0 {
				store.Remove(p, u, v)
				facts.Retract(p, []symtab.Sym{u, v})
			} else {
				store.Insert(p, u, v)
				facts.Assert(p, []symtab.Sym{u, v})
			}
			check(step)
		}
	}
}

// The raw-CSR probe path must flush its batched statistics into the
// store's CounterSet: retrieval accounting (FactsConsulted, the
// optimizer's work feedback) would otherwise go blind to counting runs.
func TestCountingStatsWired(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 16)
	shape := sgShape(t, st)
	before := w.Store.CountersSnapshot()
	answers, _ := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	after := w.Store.CountersSnapshot()
	if after.Lookups <= before.Lookups {
		t.Fatalf("lookups not counted: %d -> %d", before.Lookups, after.Lookups)
	}
	if after.Retrieved <= before.Retrieved {
		t.Fatalf("retrievals not counted: %d -> %d", before.Retrieved, after.Retrieved)
	}
}

func TestEmptyQueryConstant(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 5)
	shape := sgShape(t, st)
	got, _ := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, st.Intern("nosuch"), 0)
	if len(got) != 0 {
		t.Fatalf("answers for unknown constant: %v", got)
	}
}
