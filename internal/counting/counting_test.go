package counting

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/chaineval"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func sgShape(t *testing.T, st *symtab.Table) equations.LinearShape {
	t.Helper()
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		t.Fatal("sg does not decompose")
	}
	return shape
}

func TestCountingMatchesChainOnSamples(t *testing.T) {
	for _, gen := range []func(*symtab.Table, int) *workload.SG{
		workload.SampleA, workload.SampleB, workload.SampleC,
	} {
		st := symtab.NewTable()
		w := gen(st, 20)
		shape := sgShape(t, st)
		src := chaineval.StoreSource{Store: w.Store}
		got, stats := Evaluate(shape, src, w.Query, 0)

		res := parser.MustParse(workload.SGProgram, st)
		sys, _ := equations.Transform(res.Program)
		eng := chaineval.New(sys, src, chaineval.Options{})
		want, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want.Answers) {
			t.Fatalf("counting disagrees with chain engine: %v vs %v", got, want.Answers)
		}
		if stats.Levels == 0 {
			t.Fatal("no levels recorded")
		}
	}
}

func TestCountingCyclicBound(t *testing.T) {
	st := symtab.NewTable()
	w := workload.Cyclic(st, 3, 4)
	shape := sgShape(t, st)
	src := chaineval.StoreSource{Store: w.Store}
	got, stats := Evaluate(shape, src, w.Query, 0)
	if !stats.BoundStopped {
		t.Fatal("cyclic run should stop via the bound")
	}
	if len(got) != 4 {
		t.Fatalf("answers = %d, want 4", len(got))
	}
}

func TestReverseCountingAgrees(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 15, 0.4, seed)
		shape := sgShape(t, st)
		src := chaineval.StoreSource{Store: w.Store}
		fwd, _ := Evaluate(shape, src, w.Query, 0)
		rev, _ := EvaluateReverse(shape, src, w.Query, 0)
		return reflect.DeepEqual(fwd, rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The paper: "the time bounds for our method are identical to those of
// the counting method" — counting's work on sample (b) is quadratic, on
// samples (a) and (c) linear.
func TestCountingGrowthShapes(t *testing.T) {
	work := func(gen func(*symtab.Table, int) *workload.SG, n int) int {
		st := symtab.NewTable()
		w := gen(st, n)
		shape := sgShape(t, st)
		_, stats := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
		return stats.UpSize + stats.FlatSize + stats.DownSize
	}
	for _, tc := range []struct {
		name     string
		gen      func(*symtab.Table, int) *workload.SG
		min, max float64
	}{
		{"sampleA", workload.SampleA, 1.5, 2.6},
		{"sampleB", workload.SampleB, 3.0, 4.8},
		{"sampleC", workload.SampleC, 1.5, 2.6},
	} {
		w1 := work(tc.gen, 64)
		w2 := work(tc.gen, 128)
		ratio := float64(w2) / float64(w1)
		if ratio < tc.min || ratio > tc.max {
			t.Errorf("%s: work ratio = %.2f, want [%.1f, %.1f]", tc.name, ratio, tc.min, tc.max)
		}
	}
}

func TestEmptyQueryConstant(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 5)
	shape := sgShape(t, st)
	got, _ := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, st.Intern("nosuch"), 0)
	if len(got) != 0 {
		t.Fatalf("answers for unknown constant: %v", got)
	}
}
