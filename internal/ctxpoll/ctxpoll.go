// Package ctxpoll is the one shared implementation of context polling
// for evaluation loops. Its single subtlety: the deadline is compared
// against the wall clock, not just the Done channel — closing Done
// requires the runtime timer goroutine to be scheduled, which on a
// single-core host can trail a busy evaluation loop by the
// async-preemption interval (~10ms), longer than the deadlines a
// serving layer hands out. Every evaluator that honors contexts (the
// chain engine's canceler, the bottom-up fixpoints, the chainlog answer
// pipeline) polls through here so the workaround lives in one place.
package ctxpoll

import (
	"context"
	"time"
)

// Err polls ctx (nil-safe), returning its cause once it is done and nil
// otherwise.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if dl, ok := ctx.Deadline(); ok && time.Now().After(dl) {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return context.DeadlineExceeded
	}
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	default:
		return nil
	}
}
