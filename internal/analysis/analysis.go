// Package analysis classifies Datalog programs according to the
// definitions of Section 2 of the paper: recursive and mutually recursive
// predicates (via SCCs of the predicate dependency graph), linear rules
// and programs, binary-chain rules and programs, right-/left-linear rules,
// regular predicates and regular programs. It also performs the safety
// checks the paper assumes (no unsafe built-ins, range-restricted heads).
package analysis

import (
	"fmt"

	"chainlog/internal/ast"
	"chainlog/internal/graph"
)

// Info is the result of analyzing a program.
type Info struct {
	Program *ast.Program
	// Derived is the set of derived predicate names.
	Derived map[string]bool
	// Dep is the predicate dependency graph: head → body predicate.
	Dep *graph.Named
	// Comp maps each predicate to its SCC index in Dep.
	Comp map[string]int
	// Groups lists the SCCs (sorted member names), indexed by component.
	Groups [][]string
	// OnCycle marks predicates lying on a dependency cycle — the paper's
	// recursive predicates.
	OnCycle map[string]bool
}

// Analyze builds the dependency graph and SCC classification.
func Analyze(p *ast.Program) *Info {
	info := &Info{
		Program: p,
		Derived: p.DerivedSet(),
		Dep:     graph.NewNamed(),
		OnCycle: make(map[string]bool),
	}
	for _, r := range p.Rules {
		info.Dep.Node(r.Head.Pred)
		for _, l := range r.Body {
			if l.IsBuiltin() {
				continue
			}
			info.Dep.AddEdge(r.Head.Pred, l.Pred)
		}
	}
	info.Groups, info.Comp = info.Dep.SCCNames()
	inCycle := info.Dep.G.InCycle()
	for name := range info.Comp {
		if id, ok := info.Dep.ID(name); ok && inCycle[id] {
			info.OnCycle[name] = true
		}
	}
	return info
}

// Mutual reports whether p and q are mutually recursive in the paper's
// sense: distinct predicates in the same dependency SCC, or a single
// predicate lying on a cycle.
func (i *Info) Mutual(p, q string) bool {
	cp, okp := i.Comp[p]
	cq, okq := i.Comp[q]
	if !okp || !okq {
		return false
	}
	if p == q {
		return i.OnCycle[p]
	}
	return cp == cq
}

// MutualSet returns the maximal set of predicates mutually recursive to p
// (its SCC), or nil if p is unknown. For a non-recursive singleton the
// paper's set is empty; callers that need the SCC regardless can use
// Groups/Comp directly.
func (i *Info) MutualSet(p string) []string {
	c, ok := i.Comp[p]
	if !ok {
		return nil
	}
	g := i.Groups[c]
	if len(g) == 1 && !i.OnCycle[p] {
		return nil
	}
	return g
}

// Recursive reports whether predicate p is recursive (mutually recursive
// to itself).
func (i *Info) Recursive(p string) bool { return i.OnCycle[p] }

// RecursiveRule reports whether the rule is recursive: its head predicate
// is mutually recursive to some body predicate.
func (i *Info) RecursiveRule(r ast.Rule) bool {
	for _, l := range r.Body {
		if !l.IsBuiltin() && i.Mutual(r.Head.Pred, l.Pred) {
			return true
		}
	}
	return false
}

// RecursiveProgram reports whether the program contains a recursive rule.
func (i *Info) RecursiveProgram() bool {
	for _, r := range i.Program.Rules {
		if i.RecursiveRule(r) {
			return true
		}
	}
	return false
}

// LinearRule reports whether the body contains at most one literal whose
// predicate is mutually recursive to the head predicate.
func (i *Info) LinearRule(r ast.Rule) bool {
	n := 0
	for _, l := range r.Body {
		if !l.IsBuiltin() && i.Mutual(r.Head.Pred, l.Pred) {
			n++
		}
	}
	return n <= 1
}

// LinearProgram reports whether every rule is linear.
func (i *Info) LinearProgram() bool {
	for _, r := range i.Program.Rules {
		if !i.LinearRule(r) {
			return false
		}
	}
	return true
}

// LinearlyRecursiveProgram reports whether the program is linear and
// contains at least one recursive rule.
func (i *Info) LinearlyRecursiveProgram() bool {
	return i.LinearProgram() && i.RecursiveProgram()
}

// SingleDerivedBody reports whether every rule body contains at most one
// derived literal — the special form Section 4's transformation assumes.
func (i *Info) SingleDerivedBody() bool {
	for _, r := range i.Program.Rules {
		n := 0
		for _, l := range r.Body {
			if !l.IsBuiltin() && i.Derived[l.Pred] {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// BinaryChainRule reports whether r has the form
//
//	p(X1, Xn+1) :- p1(X1,X2), p2(X2,X3), ..., pn(Xn,Xn+1)
//
// with n >= 0 and X1,...,Xn+1 all distinct variables. The degenerate case
// n = 0 is the identity rule p(X, X) :- .
func BinaryChainRule(r ast.Rule) bool {
	if r.Head.Arity() != 2 || !r.Head.Args[0].IsVar() || !r.Head.Args[1].IsVar() {
		return false
	}
	x1, xEnd := r.Head.Args[0].Var, r.Head.Args[1].Var
	if len(r.Body) == 0 {
		return x1 == xEnd
	}
	if x1 == xEnd {
		return false
	}
	cur := x1
	seen := map[string]bool{x1: true}
	for idx, l := range r.Body {
		if l.IsBuiltin() || l.Arity() != 2 || !l.Args[0].IsVar() || !l.Args[1].IsVar() {
			return false
		}
		if l.Args[0].Var != cur {
			return false
		}
		next := l.Args[1].Var
		if idx == len(r.Body)-1 {
			if next != xEnd {
				return false
			}
		} else {
			if seen[next] || next == xEnd {
				return false
			}
		}
		seen[next] = true
		cur = next
	}
	return true
}

// BinaryChainProgram reports whether every predicate is binary and every
// rule is a binary-chain rule.
func (i *Info) BinaryChainProgram() bool {
	ar, err := i.Program.Arities()
	if err != nil {
		return false
	}
	for _, a := range ar {
		if a != 2 {
			return false
		}
	}
	for _, r := range i.Program.Rules {
		if !BinaryChainRule(r) {
			return false
		}
	}
	return true
}

// RightLinearRule reports whether in the binary-chain rule
// p(...) :- p1,...,pn none of p1..p(n-1) is mutually recursive to p
// (recursion only in the last position).
func (i *Info) RightLinearRule(r ast.Rule) bool {
	p := r.Head.Pred
	for k, l := range r.Body {
		if k == len(r.Body)-1 {
			break
		}
		if !l.IsBuiltin() && i.Mutual(p, l.Pred) {
			return false
		}
	}
	return true
}

// LeftLinearRule reports whether none of p2..pn is mutually recursive to
// the head (recursion only in the first position).
func (i *Info) LeftLinearRule(r ast.Rule) bool {
	p := r.Head.Pred
	for k, l := range r.Body {
		if k == 0 {
			continue
		}
		if !l.IsBuiltin() && i.Mutual(p, l.Pred) {
			return false
		}
	}
	return true
}

// RegularPred reports whether derived predicate p is regular: all rules
// for predicates mutually recursive to p are right-linear, or all are
// left-linear. (The rules examined are those whose head lies in p's
// mutual-recursion set, including p's own rules.)
func (i *Info) RegularPred(p string) bool {
	group := i.groupOf(p)
	allRight, allLeft := true, true
	for _, r := range i.Program.Rules {
		if !inGroup(group, r.Head.Pred) {
			continue
		}
		if !i.RightLinearRule(r) {
			allRight = false
		}
		if !i.LeftLinearRule(r) {
			allLeft = false
		}
	}
	return allRight || allLeft
}

// RegularProgram reports whether the binary-chain program is regular: all
// derived predicates are regular.
func (i *Info) RegularProgram() bool {
	for p := range i.Derived {
		if !i.RegularPred(p) {
			return false
		}
	}
	return true
}

func (i *Info) groupOf(p string) []string {
	if c, ok := i.Comp[p]; ok {
		return i.Groups[c]
	}
	return []string{p}
}

// identityRule reports whether r is an empty-body rule whose head
// arguments are all the same variable, e.g. p(X, X) :- .
func identityRule(r ast.Rule) bool {
	if len(r.Body) != 0 || r.Head.Arity() == 0 {
		return false
	}
	first := r.Head.Args[0]
	if !first.IsVar() {
		return false
	}
	for _, a := range r.Head.Args[1:] {
		if !a.IsVar() || a.Var != first.Var {
			return false
		}
	}
	return true
}

func inGroup(group []string, p string) bool {
	for _, g := range group {
		if g == p {
			return true
		}
	}
	return false
}

// CheckSafety verifies the paper's safety assumptions: every head variable
// occurs in a body atom (range restriction; facts must be ground), and
// every variable of a built-in literal occurs in a base or derived atom of
// the same rule ("built-in predicates with unrestricted domains may be
// used only if all the free arguments also appear as arguments of base
// relations in the same rule").
func CheckSafety(p *ast.Program) error {
	for _, r := range p.Rules {
		if identityRule(r) {
			// The binary-chain identity rule p(X,...,X) :- is allowed:
			// it denotes the identity on the active domain (the paper's
			// definition of the reflexive closure uses it).
			continue
		}
		atomVars := make(map[string]bool)
		for _, l := range r.Body {
			if l.IsBuiltin() {
				continue
			}
			for _, a := range l.Args {
				if a.IsVar() {
					atomVars[a.Var] = true
				}
			}
		}
		for _, a := range r.Head.Args {
			if a.IsVar() && !atomVars[a.Var] {
				return fmt.Errorf("unsafe rule %q: head variable %s not bound in body",
					r.Head.Pred, a.Var)
			}
		}
		for _, l := range r.Body {
			if !l.IsBuiltin() {
				continue
			}
			for _, a := range l.Args {
				if a.IsVar() && !atomVars[a.Var] {
					return fmt.Errorf("unsafe rule %q: built-in variable %s not bound by an atom",
						r.Head.Pred, a.Var)
				}
			}
		}
	}
	return nil
}
