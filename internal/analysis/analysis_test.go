package analysis

import (
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return res.Program
}

// The paper's Lemma 1 worked example: three mutual-recursion groups
// {p1,p2,p3} (right-linear), {q1,q2} (linear nonregular), {r1,r2}
// (left-linear).
const paperExample = `
p1(X, Z) :- b(X, Y), p2(Y, Z).
p1(X, Z) :- q1(X, Y), p3(Y, Z).
p2(X, Z) :- c(X, Y), p1(Y, Z).
p2(X, Z) :- d(X, Y), p3(Y, Z).
p3(X, Y) :- a(X, Y).
p3(X, Z) :- e(X, Y), p2(Y, Z).
q1(X, Z) :- a(X, Y), q2(Y, Z).
q2(X, Y) :- r2(X, Y).
q2(X, Z) :- q1(X, Y), r1(Y, Z).
r1(X, Y) :- b(X, Y).
r1(X, Y) :- r2(X, Y).
r2(X, Z) :- r1(X, Y), c(Y, Z).
`

func TestPaperExampleGroups(t *testing.T) {
	prog := parse(t, paperExample)
	info := Analyze(prog)

	groups := map[string][]string{
		"p1": {"p1", "p2", "p3"},
		"q1": {"q1", "q2"},
		"r1": {"r1", "r2"},
	}
	for rep, members := range groups {
		for _, m := range members {
			if !info.Mutual(rep, m) && rep != m {
				t.Errorf("%s and %s should be mutually recursive", rep, m)
			}
		}
	}
	if info.Mutual("p1", "q1") || info.Mutual("q2", "r1") {
		t.Error("cross-group mutual recursion reported")
	}
	for _, p := range []string{"p1", "p2", "p3", "q1", "q2", "r1", "r2"} {
		if !info.Recursive(p) {
			t.Errorf("%s should be recursive", p)
		}
	}
}

func TestPaperExampleLinearity(t *testing.T) {
	prog := parse(t, paperExample)
	info := Analyze(prog)
	if !info.LinearProgram() {
		t.Fatal("paper example is linear")
	}
	if !info.BinaryChainProgram() {
		t.Fatal("paper example is a binary-chain program")
	}
	// p1..p3 right-linear, r1,r2 left-linear, q1,q2 neither.
	for _, p := range []string{"p1", "p2", "p3", "r1", "r2"} {
		if !info.RegularPred(p) {
			t.Errorf("%s should be regular", p)
		}
	}
	for _, p := range []string{"q1", "q2"} {
		if info.RegularPred(p) {
			t.Errorf("%s should not be regular", p)
		}
	}
	if info.RegularProgram() {
		t.Error("program with q1/q2 should not be regular")
	}
}

func TestNonLinearProgram(t *testing.T) {
	prog := parse(t, `
t(X, Z) :- t(X, Y), t(Y, Z).
t(X, Y) :- e(X, Y).
`)
	info := Analyze(prog)
	if info.LinearProgram() {
		t.Fatal("quadratic transitive closure reported linear")
	}
	if !info.RecursiveProgram() {
		t.Fatal("recursive program not detected")
	}
	if info.SingleDerivedBody() {
		t.Fatal("two derived body literals not detected")
	}
}

func TestBinaryChainRuleShapes(t *testing.T) {
	st := symtab.NewTable()
	ok := []string{
		"p(X, Y) :- a(X, Y).",
		"p(X, Z) :- a(X, Y), b(Y, Z).",
		"p(X, W) :- a(X, Y), b(Y, Z), c(Z, W).",
		"p(X, X).",
	}
	for _, src := range ok {
		r := parser.MustParse(src, st).Program.Rules[0]
		if !BinaryChainRule(r) {
			t.Errorf("%q should be a binary-chain rule", src)
		}
	}
	bad := []string{
		"p(X, Y) :- a(Y, X).",             // reversed chain
		"p(X, Z) :- a(X, Y), b(Y, Y).",    // repeated variable
		"p(X, Z) :- a(X, Y), b(X, Z).",    // branch, not chain
		"p(X, Y) :- a(X, Y), b(Y, X).",    // end var reused inside
		"p(X, Z) :- a(X, Y), b(Z, Y).",    // broken link
		"p(X, Y) :- a(X, Y2, Y).",         // ternary literal
		"p(X, Y, Z) :- a(X, Y), b(Y, Z).", // ternary head
	}
	for _, src := range bad {
		r := parser.MustParse(src, st).Program.Rules[0]
		if BinaryChainRule(r) {
			t.Errorf("%q should NOT be a binary-chain rule", src)
		}
	}
}

func TestRightLeftLinear(t *testing.T) {
	prog := parse(t, `
tcr(X, Z) :- e(X, Y), tcr(Y, Z).
tcr(X, Y) :- e(X, Y).
tcl(X, Z) :- tcl(X, Y), e(Y, Z).
tcl(X, Y) :- e(X, Y).
`)
	info := Analyze(prog)
	for _, r := range prog.RulesFor("tcr") {
		if !info.RightLinearRule(r) {
			t.Errorf("tcr rule not right-linear: %v", r)
		}
	}
	for _, r := range prog.RulesFor("tcl") {
		if !info.LeftLinearRule(r) {
			t.Errorf("tcl rule not left-linear: %v", r)
		}
	}
	if !info.RegularProgram() {
		t.Error("tcr+tcl program should be regular")
	}
}

func TestSameGenerationNotRegularButLinear(t *testing.T) {
	prog := parse(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`)
	info := Analyze(prog)
	if !info.LinearProgram() || !info.BinaryChainProgram() {
		t.Fatal("sg should be a linear binary-chain program")
	}
	if info.RegularPred("sg") {
		t.Fatal("sg is neither right- nor left-linear")
	}
	if !info.LinearlyRecursiveProgram() {
		t.Fatal("sg is linearly recursive")
	}
}

func TestCheckSafety(t *testing.T) {
	good := parse(t, `
p(X, Y) :- q(X, Y), X < Y.
refl(X, X).
`)
	if err := CheckSafety(good); err != nil {
		t.Fatalf("safe program rejected: %v", err)
	}
	badHead := parse(t, `p(X, Y) :- q(X, X).`)
	if err := CheckSafety(badHead); err == nil {
		t.Fatal("unbound head variable accepted")
	}
	badBuiltin := parse(t, `p(X, Y) :- q(X, Y), X < Z.`)
	if err := CheckSafety(badBuiltin); err == nil {
		t.Fatal("unbound builtin variable accepted")
	}
}

func TestMutualSingletonNonRecursive(t *testing.T) {
	prog := parse(t, `
p(X, Y) :- q(X, Y).
q(X, Y) :- e(X, Y).
`)
	info := Analyze(prog)
	if info.Recursive("p") || info.Recursive("q") {
		t.Fatal("non-recursive predicates reported recursive")
	}
	if info.Mutual("p", "p") {
		t.Fatal("non-recursive p mutually recursive to itself")
	}
	if info.RecursiveProgram() {
		t.Fatal("program has no recursion")
	}
	if set := info.MutualSet("p"); set != nil {
		t.Fatalf("MutualSet(p) = %v, want nil", set)
	}
}
