package parser

import (
	"strings"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/symtab"
)

func TestParseRulesAndFacts(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse(`
% same generation
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
flat(a, b).   // a fact
up(a, c).
`, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules = %d", len(res.Program.Rules))
	}
	if len(res.Facts) != 2 {
		t.Fatalf("facts = %d", len(res.Facts))
	}
	if res.Facts[0].Pred != "flat" || st.Name(res.Facts[0].Args[1]) != "b" {
		t.Fatalf("fact 0 = %+v", res.Facts[0])
	}
	r := res.Program.Rules[1]
	if r.Head.Pred != "sg" || len(r.Body) != 3 {
		t.Fatalf("rule 1 = %s", r.Render(st))
	}
	if !r.Body[0].Args[0].IsVar() || r.Body[0].Args[0].Var != "X" {
		t.Fatal("variable parsing broken")
	}
}

func TestParseBuiltins(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse(`
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).
`, st)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Program.Rules[0]
	if len(r.Body) != 4 {
		t.Fatalf("body len = %d", len(r.Body))
	}
	lt := r.Body[1]
	if !lt.IsBuiltin() || lt.Op != ast.OpLT {
		t.Fatalf("expected < builtin, got %s", lt.Render(st))
	}
	for _, src := range []string{
		"p(X) :- q(X, Y), X <= Y.",
		"p(X) :- q(X, Y), X >= Y.",
		"p(X) :- q(X, Y), X != Y.",
		"p(X) :- q(X, Y), X = Y.",
		"p(X) :- q(X, Y), X > Y.",
	} {
		if _, err := Parse(src, st); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseNumbersAndQuoted(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse(`flight(hel, 900, 'New York', 1300).`, st)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Facts[0]
	if st.Name(f.Args[1]) != "900" || st.Name(f.Args[2]) != "New York" {
		t.Fatalf("args = %v %v", st.Name(f.Args[1]), st.Name(f.Args[2]))
	}
}

func TestParseIdentityRuleKept(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse(`p(X, X).`, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 1 || len(res.Facts) != 0 {
		t.Fatalf("identity rule not kept as rule: rules=%d facts=%d", len(res.Program.Rules), len(res.Facts))
	}
}

func TestParseErrors(t *testing.T) {
	st := symtab.NewTable()
	bad := []string{
		"p(X, Y :- q(X, Y).",
		"p(X,Y) :- q(X,Y)",        // missing dot
		"p(X,Y) :- q(X,Y), .",     // dangling comma
		"p(X,Y) :- 'unterminated", // bad string
		"X < .",                   // builtin without operand
		"p(a). p(a, b) :- q(a).",  // arity conflict is caught later; parse is fine — use a real parse error instead
	}
	for _, src := range bad[:5] {
		if _, err := Parse(src, st); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestFactRuleOverlapRejected(t *testing.T) {
	st := symtab.NewTable()
	_, err := Parse(`
p(a, b).
p(X, Y) :- q(X, Y).
`, st)
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("expected base/derived disjointness error, got %v", err)
	}
}

func TestParseQuery(t *testing.T) {
	st := symtab.NewTable()
	q, err := ParseQuery("sg(john, Y)?", st)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pred != "sg" || q.Adornment() != "bf" {
		t.Fatalf("query = %s adorn %s", q.Render(st), q.Adornment())
	}
	q, err = ParseQuery("p(X, X)", st)
	if err != nil {
		t.Fatal(err)
	}
	if q.Adornment() != "ff" {
		t.Fatalf("adorn = %s", q.Adornment())
	}
	if _, err := ParseQuery("X < Y", st); err == nil {
		t.Fatal("builtin query accepted")
	}
	if _, err := ParseQuery("p(a) junk", st); err == nil {
		t.Fatal("trailing junk accepted")
	}
}

func TestFormatFactsRoundTrip(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse("edge(a, b).\nedge(b, c).\n", st)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatFacts(res.Facts, st)
	res2, err := Parse(text, st)
	if err != nil {
		t.Fatalf("reparsing %q: %v", text, err)
	}
	if len(res2.Facts) != len(res.Facts) {
		t.Fatal("fact round trip lost facts")
	}
}

func TestProgramRenderRoundTrip(t *testing.T) {
	st := symtab.NewTable()
	src := `sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).`
	res := MustParse(src, st)
	rendered := res.Program.Render(st)
	res2, err := Parse(rendered, st)
	if err != nil {
		t.Fatalf("reparsing rendered program: %v\n%s", err, rendered)
	}
	if res2.Program.Render(st) != rendered {
		t.Fatal("render not stable")
	}
}

func TestZeroArityPredicate(t *testing.T) {
	st := symtab.NewTable()
	res, err := Parse(`ok :- edge(a, b).`, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.Rules[0].Head.Arity() != 0 {
		t.Fatal("zero-arity head broken")
	}
}
