// Package parser implements a scanner and recursive-descent parser for the
// Datalog text syntax used throughout this module:
//
//	% comment                  (also: // comment)
//	sg(X, Y) :- flat(X, Y).
//	sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//	flat(a, b).                % a fact: all-constant head, empty body
//	cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, cnx(D1,DT1,D,AT).
//
// Identifiers starting with an upper-case letter or '_' are variables;
// identifiers starting with a lower-case letter, quoted strings, and
// numbers are constants. The comparison built-ins <, <=, >, >=, =, != are
// recognized in rule bodies.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"chainlog/internal/ast"
	"chainlog/internal/symtab"
)

// Fact is a parsed ground fact destined for the extensional database.
type Fact struct {
	Pred string
	Args []symtab.Sym
}

// Result holds a parsed program: the intensional rules and the extensional
// facts, separated as the paper separates them.
type Result struct {
	Program *ast.Program
	Facts   []Fact
}

// Parse parses a full program text. Constants are interned into st.
func Parse(src string, st *symtab.Table) (*Result, error) {
	p := &parser{lex: newLexer(src), st: st}
	res := &Result{Program: &ast.Program{}}
	for {
		tok := p.peek()
		if tok.kind == tokEOF {
			break
		}
		rule, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if len(rule.Body) == 0 && rule.Head.IsGround() && !rule.Head.IsBuiltin() {
			args := make([]symtab.Sym, len(rule.Head.Args))
			for i, a := range rule.Head.Args {
				args[i] = a.Const
			}
			res.Facts = append(res.Facts, Fact{Pred: rule.Head.Pred, Args: args})
			continue
		}
		// Empty-body rules with variables are kept as rules: the paper's
		// reflexive-closure programs contain the identity rule p(X,X) :- .
		res.Program.Rules = append(res.Program.Rules, rule)
	}
	// Base/derived disjointness (Section 2 assumption).
	derived := res.Program.DerivedSet()
	for _, f := range res.Facts {
		if derived[f.Pred] {
			return nil, fmt.Errorf("predicate %s appears both as a fact and as a rule head", f.Pred)
		}
	}
	return res, nil
}

// ParseQuery parses a query literal such as "sg(john, Y)" with an optional
// trailing '?' or '.'.
func ParseQuery(src string, st *symtab.Table) (ast.Query, error) {
	return parseQuery(src, st, false)
}

// ParseQueryTemplate parses a parameterized query literal in which '?'
// placeholders stand for bound constants supplied later, e.g.
// "sg(?, Y)" or "cnx(?, ?, D, AT)". Placeholders parse to hole terms
// (ast.Term zero value); DB.Prepare binds them per Run call.
func ParseQueryTemplate(src string, st *symtab.Table) (ast.Query, error) {
	return parseQuery(src, st, true)
}

func parseQuery(src string, st *symtab.Table, allowHoles bool) (ast.Query, error) {
	p := &parser{lex: newLexer(src), st: st, allowHoles: allowHoles}
	lit, err := p.parseLiteral()
	if err != nil {
		return ast.Query{}, err
	}
	if lit.IsBuiltin() {
		return ast.Query{}, fmt.Errorf("query must be an ordinary literal")
	}
	tok := p.peek()
	if tok.kind == tokQuestion || tok.kind == tokDot {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return ast.Query{}, fmt.Errorf("line %d: unexpected %q after query", p.lex.line, t.text)
	}
	return ast.Query{Literal: lit}, nil
}

// MustParse is Parse for tests and examples with known-good sources.
func MustParse(src string, st *symtab.Table) *Result {
	r, err := Parse(src, st)
	if err != nil {
		panic(err)
	}
	return r
}

// MustParseQuery is ParseQuery for known-good sources.
func MustParseQuery(src string, st *symtab.Table) ast.Query {
	q, err := ParseQuery(src, st)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokIf // :-
	tokOp // comparison
	tokQuestion
)

type token struct {
	kind tokKind
	text string
	op   ast.BuiltinOp
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", line: l.line}, nil
	case c == '?':
		l.pos++
		return token{kind: tokQuestion, text: "?", line: l.line}, nil
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{kind: tokIf, text: ":-", line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected ':'", l.line)
	case c == '<':
		if l.peekByte(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, op: ast.OpLE, text: "<=", line: l.line}, nil
		}
		l.pos++
		return token{kind: tokOp, op: ast.OpLT, text: "<", line: l.line}, nil
	case c == '>':
		if l.peekByte(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, op: ast.OpGE, text: ">=", line: l.line}, nil
		}
		l.pos++
		return token{kind: tokOp, op: ast.OpGT, text: ">", line: l.line}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, op: ast.OpEQ, text: "=", line: l.line}, nil
	case c == '!':
		if l.peekByte(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, op: ast.OpNE, text: "!=", line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected '!'", l.line)
	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			if l.src[l.pos] == '\n' {
				return token{}, fmt.Errorf("line %d: unterminated quoted constant", l.line)
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("line %d: unterminated quoted constant", l.line)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case isDigit(rune(c)) || c == '-' && isDigit(rune(l.peekByte(1))):
		l.pos++
		for l.pos < len(l.src) && (isDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_' && false) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
			return token{kind: tokVar, text: text, line: l.line}, nil
		}
		return token{kind: tokIdent, text: text, line: l.line}, nil
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) peekByte(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isDigit(c rune) bool { return c >= '0' && c <= '9' }

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-'
}

type parser struct {
	lex    *lexer
	st     *symtab.Table
	tok    token
	hasTok bool
	err    error
	// allowHoles permits '?' placeholder terms (query templates only).
	allowHoles bool
}

func (p *parser) peek() token {
	if !p.hasTok {
		t, err := p.lex.next()
		if err != nil {
			p.err = err
			t = token{kind: tokEOF, line: p.lex.line}
		}
		p.tok = t
		p.hasTok = true
	}
	return p.tok
}

func (p *parser) next() token {
	t := p.peek()
	p.hasTok = false
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if p.err != nil {
		return t, p.err
	}
	if t.kind != k {
		return t, fmt.Errorf("line %d: expected %s, got %q", t.line, what, t.text)
	}
	return t, nil
}

// parseRule parses: literal [ ":-" literal {"," literal} ] "."
func (p *parser) parseRule() (ast.Rule, error) {
	head, err := p.parseLiteral()
	if err != nil {
		return ast.Rule{}, err
	}
	if head.IsBuiltin() {
		return ast.Rule{}, fmt.Errorf("line %d: rule head cannot be a built-in", p.lex.line)
	}
	var body []ast.Literal
	if p.peek().kind == tokIf {
		p.next()
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return ast.Rule{}, err
			}
			body = append(body, lit)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return ast.Rule{}, err
	}
	return ast.Rule{Head: head, Body: body}, nil
}

// parseLiteral parses p(args) or "term op term".
func (p *parser) parseLiteral() (ast.Literal, error) {
	t := p.peek()
	if t.kind == tokVar || t.kind == tokNumber || t.kind == tokString {
		// Must be a comparison: term op term.
		left, err := p.parseTerm()
		if err != nil {
			return ast.Literal{}, err
		}
		opTok, err := p.expect(tokOp, "comparison operator")
		if err != nil {
			return ast.Literal{}, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Builtin(opTok.op, left, right), nil
	}
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return ast.Literal{}, err
	}
	// An identifier followed by a comparison op is a constant comparison.
	if p.peek().kind == tokOp {
		opTok := p.next()
		right, err := p.parseTerm()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Builtin(opTok.op, ast.C(p.st.Intern(name.text)), right), nil
	}
	if p.peek().kind != tokLParen {
		return ast.Atom(name.text), nil
	}
	p.next()
	var args []ast.Term
	if p.peek().kind != tokRParen {
		for {
			arg, err := p.parseTerm()
			if err != nil {
				return ast.Literal{}, err
			}
			args = append(args, arg)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return ast.Literal{}, err
	}
	return ast.Atom(name.text, args...), nil
}

func (p *parser) parseTerm() (ast.Term, error) {
	t := p.next()
	if p.err != nil {
		return ast.Term{}, p.err
	}
	switch t.kind {
	case tokVar:
		return ast.V(t.text), nil
	case tokIdent, tokNumber:
		return ast.C(p.st.Intern(t.text)), nil
	case tokString:
		return ast.C(p.st.Intern(t.text)), nil
	case tokQuestion:
		if p.allowHoles {
			return ast.Hole(), nil
		}
		return ast.Term{}, fmt.Errorf("line %d: '?' placeholder is only valid in a prepared-query template", t.line)
	}
	return ast.Term{}, fmt.Errorf("line %d: expected term, got %q", t.line, t.text)
}

// FormatFacts renders facts back to program text, one per line, for
// round-trip tests and debugging. Constants are quoted where needed so
// the output reparses to the same facts.
func FormatFacts(facts []Fact, st *symtab.Table) string {
	var b strings.Builder
	for _, f := range facts {
		b.WriteString(f.Pred)
		b.WriteByte('(')
		for i, a := range f.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ast.C(a).Render(st))
		}
		b.WriteString(").\n")
	}
	return b.String()
}
