package parser

import (
	"testing"

	"chainlog/internal/symtab"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts round-trips through render → reparse with a stable program.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"sg(X, Y) :- flat(X, Y).",
		"sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).",
		"flat(a, b). up(a, c).",
		"p(X, X).",
		"cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, cnx(D1, DT1, D, AT).",
		"q('New York', 900).",
		"% comment\np(X) :- q(X, Y), X <= Y.",
		"p :- q(a).",
		"p(X) :- q(X), X != 3.",
		"((((",
		"p(X :-",
		"'",
		"p(X) :- .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st := symtab.NewTable()
		res, err := Parse(src, st)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := res.Program.Render(st) + FormatFacts(res.Facts, st)
		res2, err := Parse(rendered, st)
		if err != nil {
			t.Fatalf("accepted program failed to reparse: %v\noriginal: %q\nrendered: %q", err, src, rendered)
		}
		rendered2 := res2.Program.Render(st) + FormatFacts(res2.Facts, st)
		if rendered != rendered2 {
			t.Fatalf("render not stable:\n%q\nvs\n%q", rendered, rendered2)
		}
	})
}

// FuzzParseQuery checks the query parser likewise.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{"sg(john, Y)", "p(X, X)?", "cnx(hel, 900, D, AT).", "p", "p()"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st := symtab.NewTable()
		q, err := ParseQuery(src, st)
		if err != nil {
			return
		}
		if _, err := ParseQuery(q.Render(st), st); err != nil {
			t.Fatalf("accepted query failed to reparse: %q -> %q: %v", src, q.Render(st), err)
		}
	})
}
