// Package expr defines expressions over binary relations with the
// "natural" operators of the paper — ∪ (union), · (composition) and
// * (reflexive transitive closure) — plus the identity relation id, the
// empty relation, and inverse (needed to evaluate p(X,b) queries by
// reversing the program, and present in the Hunt-et-al. operator set).
//
// Lemma 1 transforms a linear binary-chain program into one equation
// p = e_p per derived predicate, where e_p is such an expression whose
// arguments are predicate symbols. The automaton package compiles these
// expressions into NFAs by the standard regular-expression construction.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a relational expression node. Expressions are immutable; all
// rewriting helpers return new values.
type Expr interface {
	isExpr()
	// String renders the expression with ∪ for union, . for composition
	// and postfix * for closure.
	String() string
}

// Pred is an occurrence of a predicate symbol (base or derived — the
// distinction lives in the surrounding program, not the expression).
type Pred struct{ Name string }

// Empty is the empty relation ∅ (the paper's degenerate case in Lemma 1
// step 3: p = p·e is interpreted as p = ∅).
type Empty struct{}

// Ident is the identity relation id, the interpretation of transitions on
// the empty string in M(e).
type Ident struct{}

// Union is e1 ∪ ... ∪ en, n >= 2 after normalization.
type Union struct{ Terms []Expr }

// Concat is e1 · ... · en, n >= 2 after normalization.
type Concat struct{ Terms []Expr }

// Star is e*, the reflexive transitive closure.
type Star struct{ E Expr }

// Inverse is e⁻¹.
type Inverse struct{ E Expr }

func (Pred) isExpr()    {}
func (Empty) isExpr()   {}
func (Ident) isExpr()   {}
func (Union) isExpr()   {}
func (Concat) isExpr()  {}
func (Star) isExpr()    {}
func (Inverse) isExpr() {}

func (p Pred) String() string    { return p.Name }
func (Empty) String() string     { return "0" }
func (Ident) String() string     { return "id" }
func (s Star) String() string    { return wrap(s.E) + "*" }
func (v Inverse) String() string { return wrap(v.E) + "~" }

func (u Union) String() string {
	parts := make([]string, len(u.Terms))
	for i, t := range u.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " U ")
}

func (c Concat) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		if _, ok := t.(Union); ok {
			parts[i] = "(" + t.String() + ")"
		} else {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, ".")
}

// wrap parenthesizes non-atomic operands of postfix operators.
func wrap(e Expr) string {
	switch e.(type) {
	case Pred, Empty, Ident, Star, Inverse:
		return e.String()
	}
	return "(" + e.String() + ")"
}

// NewUnion builds a normalized union: nested unions are flattened, Empty
// terms dropped, and duplicate terms (structurally equal) removed while
// preserving first-occurrence order. An empty result is Empty; a singleton
// collapses to its term.
func NewUnion(terms ...Expr) Expr {
	var flat []Expr
	var add func(e Expr)
	add = func(e Expr) {
		switch v := e.(type) {
		case Union:
			for _, t := range v.Terms {
				add(t)
			}
		case Empty:
		default:
			for _, prev := range flat {
				if Equal(prev, e) {
					return
				}
			}
			flat = append(flat, e)
		}
	}
	for _, t := range terms {
		add(t)
	}
	switch len(flat) {
	case 0:
		return Empty{}
	case 1:
		return flat[0]
	}
	return Union{Terms: flat}
}

// NewConcat builds a normalized composition: nested concats are flattened,
// Ident terms dropped, and any Empty term annihilates the whole product.
// An empty result is Ident; a singleton collapses to its term.
func NewConcat(terms ...Expr) Expr {
	var flat []Expr
	empty := false
	var add func(e Expr)
	add = func(e Expr) {
		switch v := e.(type) {
		case Concat:
			for _, t := range v.Terms {
				add(t)
			}
		case Ident:
		case Empty:
			empty = true
		default:
			flat = append(flat, e)
		}
	}
	for _, t := range terms {
		add(t)
	}
	if empty {
		return Empty{}
	}
	switch len(flat) {
	case 0:
		return Ident{}
	case 1:
		return flat[0]
	}
	return Concat{Terms: flat}
}

// NewStar builds a normalized closure: 0* = id* = id, (e*)* = e*.
func NewStar(e Expr) Expr {
	switch v := e.(type) {
	case Empty, Ident:
		return Ident{}
	case Star:
		return v
	}
	return Star{E: e}
}

// NewInverse builds a normalized inverse: (e⁻¹)⁻¹ = e, id⁻¹ = id, 0⁻¹ = 0.
func NewInverse(e Expr) Expr {
	switch v := e.(type) {
	case Inverse:
		return v.E
	case Ident:
		return Ident{}
	case Empty:
		return Empty{}
	}
	return Inverse{E: e}
}

// Equal reports structural equality of normalized expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Pred:
		y, ok := b.(Pred)
		return ok && x.Name == y.Name
	case Empty:
		_, ok := b.(Empty)
		return ok
	case Ident:
		_, ok := b.(Ident)
		return ok
	case Star:
		y, ok := b.(Star)
		return ok && Equal(x.E, y.E)
	case Inverse:
		y, ok := b.(Inverse)
		return ok && Equal(x.E, y.E)
	case Union:
		y, ok := b.(Union)
		if !ok || len(x.Terms) != len(y.Terms) {
			return false
		}
		for i := range x.Terms {
			if !Equal(x.Terms[i], y.Terms[i]) {
				return false
			}
		}
		return true
	case Concat:
		y, ok := b.(Concat)
		if !ok || len(x.Terms) != len(y.Terms) {
			return false
		}
		for i := range x.Terms {
			if !Equal(x.Terms[i], y.Terms[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// UnionTerms views e as a union and returns its top-level terms (a single
// slice for non-unions; nil for Empty).
func UnionTerms(e Expr) []Expr {
	switch v := e.(type) {
	case Union:
		return v.Terms
	case Empty:
		return nil
	}
	return []Expr{e}
}

// ConcatTerms views e as a composition and returns its top-level factors
// (a single slice for non-concats; nil for Ident).
func ConcatTerms(e Expr) []Expr {
	switch v := e.(type) {
	case Concat:
		return v.Terms
	case Ident:
		return nil
	}
	return []Expr{e}
}

// ContainsPred reports whether the predicate name occurs anywhere in e.
func ContainsPred(e Expr, name string) bool {
	found := false
	Walk(e, func(x Expr) {
		if p, ok := x.(Pred); ok && p.Name == name {
			found = true
		}
	})
	return found
}

// ContainsAny reports whether any predicate in the set occurs in e.
func ContainsAny(e Expr, names map[string]bool) bool {
	found := false
	Walk(e, func(x Expr) {
		if p, ok := x.(Pred); ok && names[p.Name] {
			found = true
		}
	})
	return found
}

// CountPred returns the number of occurrences of name in e.
func CountPred(e Expr, name string) int {
	n := 0
	Walk(e, func(x Expr) {
		if p, ok := x.(Pred); ok && p.Name == name {
			n++
		}
	})
	return n
}

// Preds returns the sorted distinct predicate names occurring in e.
func Preds(e Expr) []string {
	set := make(map[string]bool)
	Walk(e, func(x Expr) {
		if p, ok := x.(Pred); ok {
			set[p.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Walk visits every node of e in preorder.
func Walk(e Expr, f func(Expr)) {
	f(e)
	switch v := e.(type) {
	case Union:
		for _, t := range v.Terms {
			Walk(t, f)
		}
	case Concat:
		for _, t := range v.Terms {
			Walk(t, f)
		}
	case Star:
		Walk(v.E, f)
	case Inverse:
		Walk(v.E, f)
	}
}

// Substitute replaces every occurrence of predicate name with repl,
// renormalizing on the way up.
func Substitute(e Expr, name string, repl Expr) Expr {
	switch v := e.(type) {
	case Pred:
		if v.Name == name {
			return repl
		}
		return v
	case Union:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = Substitute(t, name, repl)
		}
		return NewUnion(terms...)
	case Concat:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = Substitute(t, name, repl)
		}
		return NewConcat(terms...)
	case Star:
		return NewStar(Substitute(v.E, name, repl))
	case Inverse:
		return NewInverse(Substitute(v.E, name, repl))
	}
	return e
}

// SubstituteAll applies a set of substitutions simultaneously.
func SubstituteAll(e Expr, repl map[string]Expr) Expr {
	switch v := e.(type) {
	case Pred:
		if r, ok := repl[v.Name]; ok {
			return r
		}
		return v
	case Union:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = SubstituteAll(t, repl)
		}
		return NewUnion(terms...)
	case Concat:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = SubstituteAll(t, repl)
		}
		return NewConcat(terms...)
	case Star:
		return NewStar(SubstituteAll(v.E, repl))
	case Inverse:
		return NewInverse(SubstituteAll(v.E, repl))
	}
	return e
}

// Reverse returns the expression denoting the inverse relation of e, with
// inverses pushed down to the predicate leaves: (e·f)ⁱⁿᵛ = fⁱⁿᵛ·eⁱⁿᵛ,
// (e∪f)ⁱⁿᵛ = eⁱⁿᵛ∪fⁱⁿᵛ, (e*)ⁱⁿᵛ = (eⁱⁿᵛ)*. This is how p(X,b) queries are
// evaluated: apply the algorithm to the reversed equation with the bound
// argument first.
func Reverse(e Expr) Expr {
	switch v := e.(type) {
	case Pred:
		return Inverse{E: v}
	case Empty, Ident:
		return e
	case Union:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = Reverse(t)
		}
		return NewUnion(terms...)
	case Concat:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[len(v.Terms)-1-i] = Reverse(t)
		}
		return NewConcat(terms...)
	case Star:
		return NewStar(Reverse(v.E))
	case Inverse:
		return v.E
	}
	return e
}

// Size returns the number of predicate occurrences in e — the paper's
// notion of expression size counts tuples per occurrence, so this is the
// structural factor (the A3 Horner ablation compares it for sg_i vs
// sg'_i).
func Size(e Expr) int {
	n := 0
	Walk(e, func(x Expr) {
		if _, ok := x.(Pred); ok {
			n++
		}
	})
	return n
}

// Depth returns the nesting depth of e.
func Depth(e Expr) int {
	switch v := e.(type) {
	case Union, Concat:
		d := 0
		var terms []Expr
		if u, ok := v.(Union); ok {
			terms = u.Terms
		} else {
			terms = v.(Concat).Terms
		}
		for _, t := range terms {
			if dt := Depth(t); dt > d {
				d = dt
			}
		}
		return d + 1
	case Star:
		return Depth(v.E) + 1
	case Inverse:
		return Depth(v.E) + 1
	}
	return 1
}

// Distribute rewrites e·(f ∪ g) into e·f ∪ e·g and (f ∪ g)·e into
// f·e ∪ g·e, recursively, producing a union-of-concats normal form over
// atoms (Pred, Star, Inverse). Star bodies are left as-is. This is
// Lemma 1 step 8 in its unconditional form.
func Distribute(e Expr) Expr {
	switch v := e.(type) {
	case Union:
		terms := make([]Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = Distribute(t)
		}
		return NewUnion(terms...)
	case Concat:
		// Distribute each factor first, then take the cross product of
		// union alternatives left to right.
		alts := [][]Expr{nil} // list of factor sequences
		for _, factor := range v.Terms {
			d := Distribute(factor)
			choices := UnionTerms(d)
			if len(choices) == 0 { // factor is Empty
				return Empty{}
			}
			next := make([][]Expr, 0, len(alts)*len(choices))
			for _, seq := range alts {
				for _, c := range choices {
					ns := make([]Expr, len(seq), len(seq)+1)
					copy(ns, seq)
					ns = append(ns, c)
					next = append(next, ns)
				}
			}
			alts = next
		}
		terms := make([]Expr, len(alts))
		for i, seq := range alts {
			terms[i] = NewConcat(seq...)
		}
		return NewUnion(terms...)
	case Star:
		return NewStar(Distribute(v.E))
	case Inverse:
		return NewInverse(Distribute(v.E))
	}
	return e
}

// MustParse parses an expression (see Parse) and panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Parse parses the textual expression syntax used in tests and the CLI:
//
//	union:   e U f   (also "|" and "+")
//	concat:  e . f
//	star:    e*
//	inverse: e~
//	atoms:   predicate names, "id", "0", parenthesized expressions
func Parse(src string) (Expr, error) {
	p := &eparser{src: src}
	e, err := p.union()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("expr: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

type eparser struct {
	src string
	pos int
}

func (p *eparser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *eparser) union() (Expr, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for {
		p.ws()
		if p.pos >= len(p.src) {
			break
		}
		c := p.src[p.pos]
		isU := c == '|' || c == '+' ||
			(c == 'U' && (p.pos+1 == len(p.src) || !isWord(p.src[p.pos+1])))
		if !isU {
			break
		}
		p.pos++
		t, err := p.concat()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return NewUnion(terms...), nil
}

func (p *eparser) concat() (Expr, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != '.' {
			break
		}
		p.pos++
		t, err := p.postfix()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return NewConcat(terms...), nil
}

func (p *eparser) postfix() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == '*' {
			p.pos++
			e = NewStar(e)
			continue
		}
		if p.pos < len(p.src) && p.src[p.pos] == '~' {
			p.pos++
			e = NewInverse(e)
			continue
		}
		break
	}
	return e, nil
}

func (p *eparser) atom() (Expr, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("expr: unexpected end of input")
	}
	c := p.src[p.pos]
	if c == '(' {
		p.pos++
		e, err := p.union()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("expr: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	}
	if c == '0' {
		p.pos++
		return Empty{}, nil
	}
	if !isWord(c) {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", string(c), p.pos)
	}
	start := p.pos
	for p.pos < len(p.src) && isWord(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "id" {
		return Ident{}, nil
	}
	return Pred{Name: name}, nil
}

func isWord(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '\''
}
