package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizationUnion(t *testing.T) {
	a, b, c := Pred{"a"}, Pred{"b"}, Pred{"c"}
	cases := []struct {
		in   Expr
		want string
	}{
		{NewUnion(), "0"},
		{NewUnion(a), "a"},
		{NewUnion(a, b), "a U b"},
		{NewUnion(a, Empty{}, b), "a U b"},
		{NewUnion(a, a, b, a), "a U b"},
		{NewUnion(NewUnion(a, b), c), "a U b U c"},
		{NewUnion(Empty{}, Empty{}), "0"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("got %q want %q", got, tc.want)
		}
	}
}

func TestNormalizationConcat(t *testing.T) {
	a, b := Pred{"a"}, Pred{"b"}
	cases := []struct {
		in   Expr
		want string
	}{
		{NewConcat(), "id"},
		{NewConcat(a), "a"},
		{NewConcat(a, b), "a.b"},
		{NewConcat(a, Ident{}, b), "a.b"},
		{NewConcat(a, Empty{}, b), "0"},
		{NewConcat(NewConcat(a, b), a), "a.b.a"},
		{NewConcat(Ident{}, Ident{}), "id"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("got %q want %q", got, tc.want)
		}
	}
}

func TestNormalizationStarInverse(t *testing.T) {
	a := Pred{"a"}
	if got := NewStar(Empty{}).String(); got != "id" {
		t.Errorf("0* = %q", got)
	}
	if got := NewStar(Ident{}).String(); got != "id" {
		t.Errorf("id* = %q", got)
	}
	if got := NewStar(NewStar(a)).String(); got != "a*" {
		t.Errorf("(a*)* = %q", got)
	}
	if got := NewInverse(NewInverse(a)).String(); got != "a" {
		t.Errorf("(a~)~ = %q", got)
	}
	if got := NewInverse(Ident{}).String(); got != "id" {
		t.Errorf("id~ = %q", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"id",
		"0",
		"a U b",
		"a.b",
		"a.b.c",
		"a U b.c",
		"(a U b).c",
		"a*",
		"(a.b)*",
		"a~",
		"(b3.b4* U b2.p).b1",
		"b.(d.e)*.c",
		"flat U up.sg.down",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", e.String(), src, err)
		}
		if !Equal(e, e2) {
			t.Fatalf("round trip changed %q: %q vs %q", src, e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(a", "a..b", "a U", ")", "a b"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestUnionAlternativeSyntax(t *testing.T) {
	for _, src := range []string{"a U b", "a | b", "a + b"} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if e.String() != "a U b" {
			t.Fatalf("Parse(%q) = %q", src, e.String())
		}
	}
}

func TestContainsAndCount(t *testing.T) {
	e := MustParse("b.(d.e)*.c U p.a U p.e.p")
	if !ContainsPred(e, "p") || !ContainsPred(e, "d") {
		t.Fatal("ContainsPred misses")
	}
	if ContainsPred(e, "zz") {
		t.Fatal("ContainsPred false positive")
	}
	if n := CountPred(e, "p"); n != 3 {
		t.Fatalf("CountPred(p) = %d", n)
	}
	if got := strings.Join(Preds(e), ","); got != "a,b,c,d,e,p" {
		t.Fatalf("Preds = %q", got)
	}
	if !ContainsAny(e, map[string]bool{"zz": true, "d": true}) {
		t.Fatal("ContainsAny misses")
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParse("a U p.b")
	got := Substitute(e, "p", MustParse("x.y"))
	if got.String() != "a U x.y.b" {
		t.Fatalf("Substitute = %q", got)
	}
	// Substituting Empty annihilates the concat term.
	got = Substitute(e, "p", Empty{})
	if got.String() != "a" {
		t.Fatalf("Substitute empty = %q", got)
	}
	// Substituting Ident drops the factor.
	got = Substitute(e, "p", Ident{})
	if got.String() != "a U b" {
		t.Fatalf("Substitute id = %q", got)
	}
	got = SubstituteAll(MustParse("p.q"), map[string]Expr{"p": Pred{"x"}, "q": Pred{"y"}})
	if got.String() != "x.y" {
		t.Fatalf("SubstituteAll = %q", got)
	}
}

func TestReverse(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a", "a~"},
		{"a.b", "b~.a~"},
		{"a U b", "a~ U b~"},
		{"(a.b)*", "(b~.a~)*"},
		{"a~", "a"},
		{"id", "id"},
		{"0", "0"},
	}
	for _, tc := range cases {
		got := Reverse(MustParse(tc.in)).String()
		if got != tc.want {
			t.Errorf("Reverse(%q) = %q want %q", tc.in, got, tc.want)
		}
	}
}

// Reverse is a structural involution on inverse-free expressions (on
// Inverse nodes the identity holds only semantically, since Reverse pushes
// inverses to the leaves).
func TestReverseInvolution(t *testing.T) {
	var strip func(e Expr) Expr
	strip = func(e Expr) Expr {
		switch v := e.(type) {
		case Inverse:
			return strip(v.E)
		case Union:
			ts := make([]Expr, len(v.Terms))
			for i, x := range v.Terms {
				ts[i] = strip(x)
			}
			return NewUnion(ts...)
		case Concat:
			ts := make([]Expr, len(v.Terms))
			for i, x := range v.Terms {
				ts[i] = strip(x)
			}
			return NewConcat(ts...)
		case Star:
			return NewStar(strip(v.E))
		}
		return e
	}
	f := func(seed int64) bool {
		e := strip(randomExpr(rand.New(rand.NewSource(seed)), 4))
		return Equal(Reverse(Reverse(e)), e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistribute(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a.(b U c)", "a.b U a.c"},
		{"(a U b).c", "a.c U b.c"},
		{"(a U b).(c U d)", "a.c U a.d U b.c U b.d"},
		{"a.(b U c).d", "a.b.d U a.c.d"},
		{"a", "a"},
		{"(a U b)*", "(a U b)*"}, // star bodies are left alone
	}
	for _, tc := range cases {
		got := Distribute(MustParse(tc.in)).String()
		if got != tc.want {
			t.Errorf("Distribute(%q) = %q want %q", tc.in, got, tc.want)
		}
	}
}

func TestSizeAndDepth(t *testing.T) {
	e := MustParse("b.(d.e)*.c U p.a")
	if Size(e) != 6 {
		t.Fatalf("Size = %d", Size(e))
	}
	if Depth(e) < 3 {
		t.Fatalf("Depth = %d", Depth(e))
	}
	if Size(Ident{}) != 0 || Size(Empty{}) != 0 {
		t.Fatal("Size of id/0 not 0")
	}
}

func TestUnionConcatTermsViews(t *testing.T) {
	if got := UnionTerms(Empty{}); got != nil {
		t.Fatalf("UnionTerms(0) = %v", got)
	}
	if got := len(UnionTerms(MustParse("a U b U c"))); got != 3 {
		t.Fatalf("UnionTerms len = %d", got)
	}
	if got := len(UnionTerms(Pred{"a"})); got != 1 {
		t.Fatalf("UnionTerms singleton len = %d", got)
	}
	if got := ConcatTerms(Ident{}); got != nil {
		t.Fatalf("ConcatTerms(id) = %v", got)
	}
	if got := len(ConcatTerms(MustParse("a.b.c"))); got != 3 {
		t.Fatalf("ConcatTerms len = %d", got)
	}
}

// randomExpr builds a random normalized expression over preds a,b,c.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return Pred{"a"}
		case 1:
			return Pred{"b"}
		case 2:
			return Pred{"c"}
		case 3:
			return Ident{}
		default:
			return Empty{}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return NewUnion(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 1:
		return NewConcat(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return NewStar(randomExpr(rng, depth-1))
	default:
		return NewInverse(randomExpr(rng, depth-1))
	}
}

// Property: normalization is idempotent under parse/print.
func TestNormalFormStable(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExpr(rand.New(rand.NewSource(seed)), 5)
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			return false
		}
		return e2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distribute preserves the set of predicate occurrences'
// names (it only rearranges structure).
func TestDistributePreservesPreds(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExpr(rand.New(rand.NewSource(seed)), 5)
		d := Distribute(e)
		got := strings.Join(Preds(d), ",")
		want := strings.Join(Preds(e), ",")
		// Distribution can only drop preds when an Empty annihilates a
		// whole product — allow subset.
		return len(got) <= len(want) || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
