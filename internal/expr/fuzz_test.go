package expr

import "testing"

// FuzzParse checks the expression parser never panics and accepted
// expressions round-trip through String → Parse.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"a", "a U b", "a.b*", "(b3.b4* U b2.p).b1", "id", "0", "a~",
		"((a))", "a U", ".a", "a**~*",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("accepted expr failed to reparse: %q -> %q: %v", src, e.String(), err)
		}
		if !Equal(e, e2) {
			t.Fatalf("round trip changed: %q vs %q", e.String(), e2.String())
		}
	})
}
