// Package symtab provides interning of constant symbols and composite
// tuple terms into dense integer IDs.
//
// The evaluation algorithms in this module manipulate graph nodes of the
// form (automaton state, term). Interning every term — including the
// composite tuple terms t(c1,...,ck) introduced by the Section 4
// transformation — into an int32 keeps those nodes comparable and hashable
// in constant time and keeps the visited-set representation compact.
package symtab

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Sym is an interned symbol. The zero value is reserved and never issued
// for a real symbol, so Sym(0) can be used as a sentinel.
type Sym int32

// None is the reserved sentinel symbol. It is used, for example, as the
// paper's special symbol ∅ in the bin(∅, p(c̄)) construction.
const None Sym = 0

// Table interns strings and tuples to Syms and resolves them back.
// A Table is safe for concurrent use: interning takes a write lock,
// resolution a read lock, so prepared query plans may intern tuple terms
// from many goroutines at once.
type Table struct {
	mu     sync.RWMutex
	size   atomic.Int64 // baseLen+len(names); read lock-free by Len
	byName map[string]Sym
	names  []string // names[i] is the text of Sym(baseLen+i)

	// Tuple terms: a tuple (s1,...,sk) is interned under a key derived
	// from its elements. elems[i] is non-nil iff Sym(baseLen+i) is a
	// tuple term.
	byTuple map[string]Sym
	elems   [][]Sym

	// base, when non-nil, resolves Syms [1, baseLen-1] from a frozen
	// name block (see NewTableFromBase); the map/slice fields above then
	// hold only the overlay of names interned after construction. Both
	// fields are immutable once the table is built, so reads need no
	// lock. A table built by NewTable has baseLen 0 and names[0] = "∅".
	base    *base
	baseLen int
}

// NewTable returns an empty symbol table. Index 0 is reserved for None.
func NewTable() *Table {
	t := &Table{
		byName:  make(map[string]Sym),
		byTuple: make(map[string]Sym),
	}
	t.names = append(t.names, "∅")
	t.elems = append(t.elems, nil)
	t.size.Store(1)
	return t
}

// Intern returns the Sym for name, creating it if needed.
func (t *Table) Intern(name string) Sym {
	if t.base != nil {
		if s, ok := t.base.lookup(name); ok {
			return s
		}
	}
	t.mu.RLock()
	s, ok := t.byName[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byName[name]; ok {
		return s
	}
	s = Sym(t.baseLen + len(t.names))
	t.byName[name] = s
	t.names = append(t.names, name)
	t.elems = append(t.elems, nil)
	t.size.Store(int64(t.baseLen + len(t.names)))
	return s
}

// Lookup returns the Sym for name without creating it.
func (t *Table) Lookup(name string) (Sym, bool) {
	if t.base != nil {
		if s, ok := t.base.lookup(name); ok {
			return s, true
		}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.byName[name]
	return s, ok
}

// InternTuple returns the Sym for the tuple term t(elems...), creating it
// if needed. The empty tuple is a valid term (it arises when an adornment
// binds no argument positions).
func (t *Table) InternTuple(elems []Sym) Sym {
	key := tupleKey(elems)
	t.mu.RLock()
	s, ok := t.byTuple[key]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byTuple[key]; ok {
		return s
	}
	s = Sym(t.baseLen + len(t.names))
	t.byTuple[key] = s
	cp := make([]Sym, len(elems))
	copy(cp, elems)
	t.names = append(t.names, "")
	t.elems = append(t.elems, cp)
	t.size.Store(int64(t.baseLen + len(t.names)))
	return s
}

// IsTuple reports whether s is a tuple term. Base symbols are always
// plain constants: the snapshot writer refuses tuple terms.
func (t *Table) IsTuple(s Sym) bool {
	if int(s) < t.baseLen {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := int(s) - t.baseLen
	return i < len(t.elems) && t.elems[i] != nil
}

// TupleElems returns the elements of a tuple term, or nil if s is not one.
// The returned slice is immutable once interned and must not be modified.
func (t *Table) TupleElems(s Sym) []Sym {
	if int(s) < t.baseLen {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := int(s) - t.baseLen
	if i >= len(t.elems) {
		return nil
	}
	return t.elems[i]
}

// Name renders s back to text. Tuple terms render as t(e1,...,ek).
func (t *Table) Name(s Sym) string {
	if s == None {
		return "∅"
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.name(s)
}

// name resolves s with t.mu already held (Name recurses into tuple
// elements; RWMutex read locks must not be re-acquired while a writer
// waits).
func (t *Table) name(s Sym) string {
	if s == None {
		return "∅"
	}
	if int(s) < t.baseLen {
		return t.base.name(s)
	}
	i := int(s) - t.baseLen
	if i >= len(t.names) {
		return fmt.Sprintf("?sym%d", int(s))
	}
	if e := t.elems[i]; e != nil {
		parts := make([]string, len(e))
		for i, x := range e {
			parts[i] = t.name(x)
		}
		return "t(" + strings.Join(parts, ",") + ")"
	}
	return t.names[i]
}

// Len returns the number of interned symbols including the sentinel. It
// is lock-free, so evaluators may size dense visited pages from it on hot
// paths: because Syms are dense, Len is an exclusive upper bound on every
// Sym issued so far.
func (t *Table) Len() int {
	return int(t.size.Load())
}

func tupleKey(elems []Sym) string {
	var b strings.Builder
	b.Grow(len(elems) * 5)
	for _, e := range elems {
		v := uint32(e)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
		b.WriteByte(',')
	}
	return b.String()
}
