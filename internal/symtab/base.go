package symtab

import (
	"fmt"
	"sort"
	"unsafe"
)

// base is a frozen block of pre-interned constant names, typically
// aliasing the sections of a mapped binary snapshot. It resolves Syms
// [1, n] without ever copying a name: resolution slices the shared blob,
// and reverse lookup binary-searches an index sorted by name. A Table
// constructed over a base starts with every snapshot symbol already
// interned at zero build cost — this is what makes opening a snapshot
// independent of the symbol count.
type base struct {
	n      int
	blob   []byte
	offs   []uint32 // len n+1; name of Sym(i) is blob[offs[i-1]:offs[i]]
	sorted []int32  // the ids 1..n ordered by name
}

// name resolves a base Sym to its text, aliasing the blob. The returned
// string is only valid while the underlying mapping is.
func (b *base) name(s Sym) string {
	i := int(s)
	if i < 1 || i > b.n {
		return fmt.Sprintf("?sym%d", i)
	}
	lo, hi := b.offs[i-1], b.offs[i]
	if lo == hi {
		return ""
	}
	return unsafe.String(&b.blob[lo], int(hi-lo))
}

// lookup finds the Sym whose text is name, by binary search over the
// name-sorted index.
func (b *base) lookup(name string) (Sym, bool) {
	i := sort.Search(len(b.sorted), func(i int) bool {
		return b.name(Sym(b.sorted[i])) >= name
	})
	if i < len(b.sorted) && b.name(Sym(b.sorted[i])) == name {
		return Sym(b.sorted[i]), true
	}
	return None, false
}

// NewTableFromBase returns a table whose Syms 1..len(sorted) resolve
// through the given frozen name block: blob holds the concatenated name
// bytes, offs delimits them (offs[i-1]:offs[i] is the name of Sym(i)),
// and sorted lists the ids ordered by name. All three slices are aliased,
// not copied — they may point into a read-only file mapping, and must
// stay valid and unmodified for the table's lifetime. New names intern
// into a heap overlay above the base ids, so the table stays dense.
//
// The structural invariants (monotone offsets in range, index a
// permutation of 1..n) are validated; name-sort order of the index is the
// writer's contract and is trusted, as section checksums already guard
// the bytes.
func NewTableFromBase(blob []byte, offs []uint32, sorted []int32) (*Table, error) {
	n := len(sorted)
	if len(offs) != n+1 {
		return nil, fmt.Errorf("symtab: base has %d offsets for %d symbols (want %d)", len(offs), n, n+1)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, fmt.Errorf("symtab: base offsets not monotone at %d", i)
		}
	}
	if n > 0 && int(offs[n]) > len(blob) {
		return nil, fmt.Errorf("symtab: base offsets exceed blob (%d > %d)", offs[n], len(blob))
	}
	perm := make([]bool, n+1)
	for _, id := range sorted {
		if id < 1 || int(id) > n || perm[id] {
			return nil, fmt.Errorf("symtab: base sort index is not a permutation of 1..%d", n)
		}
		perm[id] = true
	}
	t := &Table{
		byName:  make(map[string]Sym),
		byTuple: make(map[string]Sym),
		base:    &base{n: n, blob: blob, offs: offs, sorted: sorted},
		baseLen: n + 1, // ids [0, n]: the sentinel plus the base names
	}
	t.size.Store(int64(t.baseLen))
	return t, nil
}

// BaseLen returns the number of Syms resolved by the table's frozen base
// (including the sentinel), or 0 for a table built empty. Syms below
// BaseLen came from the snapshot; Syms at or above it were interned live.
func (t *Table) BaseLen() int { return t.baseLen }
