package symtab

import "testing"

// buildBase flattens names (assigned Syms 1..n in order) into the
// frozen-block representation NewTableFromBase consumes.
func buildBase(t *testing.T, names ...string) *Table {
	t.Helper()
	var blob []byte
	offs := make([]uint32, 1, len(names)+1)
	for _, n := range names {
		blob = append(blob, n...)
		offs = append(offs, uint32(len(blob)))
	}
	sorted := make([]int32, len(names))
	for i := range sorted {
		sorted[i] = int32(i + 1)
	}
	// Sort ids by name (insertion sort; test-sized inputs).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && names[sorted[j]-1] < names[sorted[j-1]-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	tab, err := NewTableFromBase(blob, offs, sorted)
	if err != nil {
		t.Fatalf("NewTableFromBase: %v", err)
	}
	return tab
}

func TestBaseTableResolvesAndInterns(t *testing.T) {
	tab := buildBase(t, "zeta", "alpha", "mid")
	if got := tab.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (sentinel + 3 base names)", got)
	}
	for i, want := range []string{"zeta", "alpha", "mid"} {
		if got := tab.Name(Sym(i + 1)); got != want {
			t.Errorf("Name(%d) = %q, want %q", i+1, got, want)
		}
	}
	// Interning a base name must return its base Sym, not a new one.
	if s := tab.Intern("alpha"); s != 2 {
		t.Errorf("Intern(alpha) = %d, want base Sym 2", s)
	}
	if s, ok := tab.Lookup("zeta"); !ok || s != 1 {
		t.Errorf("Lookup(zeta) = %d,%v, want 1,true", s, ok)
	}
	if _, ok := tab.Lookup("nope"); ok {
		t.Error("Lookup(nope) found a symbol")
	}
	// New names go to the overlay, densely above the base.
	s := tab.Intern("fresh")
	if s != 4 {
		t.Errorf("Intern(fresh) = %d, want 4", s)
	}
	if tab.Intern("fresh") != s {
		t.Error("re-Intern(fresh) returned a different Sym")
	}
	if got := tab.Name(s); got != "fresh" {
		t.Errorf("Name(fresh sym) = %q", got)
	}
	if got := tab.Len(); got != 5 {
		t.Errorf("Len after overlay intern = %d, want 5", got)
	}
	// Tuples intern above the base and resolve through it.
	tup := tab.InternTuple([]Sym{1, 2})
	if !tab.IsTuple(tup) || tab.IsTuple(1) {
		t.Error("IsTuple misclassified base/overlay syms")
	}
	if got := tab.Name(tup); got != "t(zeta,alpha)" {
		t.Errorf("tuple name = %q", got)
	}
	if tab.BaseLen() != 4 {
		t.Errorf("BaseLen = %d, want 4", tab.BaseLen())
	}
}

func TestBaseTableValidation(t *testing.T) {
	if _, err := NewTableFromBase([]byte("ab"), []uint32{0, 1}, []int32{1, 2}); err == nil {
		t.Error("offset/sorted length mismatch accepted")
	}
	if _, err := NewTableFromBase([]byte("ab"), []uint32{0, 2, 1}, []int32{1, 2}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	if _, err := NewTableFromBase([]byte("ab"), []uint32{0, 1, 9}, []int32{1, 2}); err == nil {
		t.Error("out-of-range offsets accepted")
	}
	if _, err := NewTableFromBase([]byte("ab"), []uint32{0, 1, 2}, []int32{1, 1}); err == nil {
		t.Error("non-permutation sort index accepted")
	}
}
