package symtab

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	tb := NewTable()
	names := []string{"a", "b", "john", "ap0", "900", "a"} // "a" repeated
	syms := make(map[string]Sym)
	for _, n := range names {
		s := tb.Intern(n)
		if prev, ok := syms[n]; ok && prev != s {
			t.Fatalf("Intern(%q) not stable: %d vs %d", n, prev, s)
		}
		syms[n] = s
		if got := tb.Name(s); got != n {
			t.Fatalf("Name(Intern(%q)) = %q", n, got)
		}
	}
	if len(syms) != 5 {
		t.Fatalf("expected 5 distinct symbols, got %d", len(syms))
	}
}

func TestNoneReserved(t *testing.T) {
	tb := NewTable()
	if s := tb.Intern("x"); s == None {
		t.Fatal("Intern returned the None sentinel")
	}
	if tb.Name(None) != "∅" {
		t.Fatalf("Name(None) = %q", tb.Name(None))
	}
	if tb.IsTuple(None) {
		t.Fatal("None must not be a tuple")
	}
}

func TestLookupDoesNotCreate(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup("ghost"); ok {
		t.Fatal("Lookup found a symbol that was never interned")
	}
	n := tb.Len()
	tb.Lookup("ghost")
	if tb.Len() != n {
		t.Fatal("Lookup grew the table")
	}
	s := tb.Intern("ghost")
	if got, ok := tb.Lookup("ghost"); !ok || got != s {
		t.Fatal("Lookup after Intern disagrees")
	}
}

func TestTupleInterning(t *testing.T) {
	tb := NewTable()
	a, b := tb.Intern("a"), tb.Intern("b")
	t1 := tb.InternTuple([]Sym{a, b})
	t2 := tb.InternTuple([]Sym{a, b})
	if t1 != t2 {
		t.Fatal("equal tuples interned to different syms")
	}
	t3 := tb.InternTuple([]Sym{b, a})
	if t3 == t1 {
		t.Fatal("order-sensitive tuples collided")
	}
	if !tb.IsTuple(t1) || tb.IsTuple(a) {
		t.Fatal("IsTuple misclassifies")
	}
	if got := tb.Name(t1); got != "t(a,b)" {
		t.Fatalf("Name(tuple) = %q", got)
	}
	elems := tb.TupleElems(t1)
	if len(elems) != 2 || elems[0] != a || elems[1] != b {
		t.Fatalf("TupleElems = %v", elems)
	}
}

func TestEmptyTuple(t *testing.T) {
	tb := NewTable()
	e1 := tb.InternTuple(nil)
	e2 := tb.InternTuple([]Sym{})
	if e1 != e2 {
		t.Fatal("empty tuples differ")
	}
	if !tb.IsTuple(e1) {
		t.Fatal("empty tuple not a tuple")
	}
	if len(tb.TupleElems(e1)) != 0 {
		t.Fatal("empty tuple has elements")
	}
	if tb.Name(e1) != "t()" {
		t.Fatalf("Name(empty tuple) = %q", tb.Name(e1))
	}
}

func TestNestedTuples(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("a")
	inner := tb.InternTuple([]Sym{a})
	outer := tb.InternTuple([]Sym{inner, a})
	if tb.Name(outer) != "t(t(a),a)" {
		t.Fatalf("nested tuple renders as %q", tb.Name(outer))
	}
}

// Property: tuple interning is injective — two tuples collide iff their
// element sequences are equal.
func TestTupleInjective(t *testing.T) {
	tb := NewTable()
	base := make([]Sym, 40)
	for i := range base {
		base[i] = tb.Intern(fmt.Sprintf("s%d", i))
	}
	f := func(xs, ys []uint8) bool {
		tx := make([]Sym, len(xs))
		for i, x := range xs {
			tx[i] = base[int(x)%len(base)]
		}
		ty := make([]Sym, len(ys))
		for i, y := range ys {
			ty[i] = base[int(y)%len(base)]
		}
		sx, sy := tb.InternTuple(tx), tb.InternTuple(ty)
		eq := len(tx) == len(ty)
		if eq {
			for i := range tx {
				if tx[i] != ty[i] {
					eq = false
					break
				}
			}
		}
		return (sx == sy) == eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tuple copy is defensive — mutating the input slice after
// interning does not change the stored elements.
func TestTupleDefensiveCopy(t *testing.T) {
	tb := NewTable()
	a, b := tb.Intern("a"), tb.Intern("b")
	in := []Sym{a, b}
	s := tb.InternTuple(in)
	in[0] = b
	if e := tb.TupleElems(s); e[0] != a {
		t.Fatal("interned tuple aliases caller slice")
	}
}
