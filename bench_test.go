package chainlog

// Benchmarks regenerating the paper's tables and figures (one benchmark
// family per evaluation artifact; see DESIGN.md's experiment index).
// Work-in-units-of-the-paper (tuples retrieved, graph nodes) is reported
// via b.ReportMetric next to wall time, so `go test -bench=.` prints both
// the shapes and the absolute costs.
//
//	BenchmarkTable1*   — E1, Section 3 comparison table
//	BenchmarkFig7*     — E2, per-sample growth curves
//	BenchmarkFig8*     — E3, cyclic same generation
//	BenchmarkTheorem3  — E4, regular case
//	BenchmarkTheorem4  — E5, linear-case iteration bound
//	BenchmarkFlight    — E8, Section 4 binding propagation
//	BenchmarkAblation* — A1, A2, A4

import (
	"fmt"
	"testing"

	"chainlog/internal/chaineval"
	"chainlog/internal/counting"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/hn"
	"chainlog/internal/hunt"
	"chainlog/internal/magic"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

type sgBench struct {
	w     *workload.SG
	st    *symtab.Table
	sys   *equations.System
	shape equations.LinearShape
}

func newSGBench(b *testing.B, gen func(*symtab.Table, int) *workload.SG, n int) *sgBench {
	b.Helper()
	st := symtab.NewTable()
	w := gen(st, n)
	res, err := parser.Parse(workload.SGProgram, st)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := equations.Transform(res.Program)
	if err != nil {
		b.Fatal(err)
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		b.Fatal("sg does not decompose")
	}
	return &sgBench{w: w, st: st, sys: sys, shape: shape}
}

var sampleGens = []struct {
	name string
	gen  func(*symtab.Table, int) *workload.SG
}{
	{"sampleA", workload.SampleA},
	{"sampleB", workload.SampleB},
	{"sampleC", workload.SampleC},
}

// BenchmarkTable1 regenerates the Section 3 comparison: every strategy on
// every Figure 7 sample.
func BenchmarkTable1(b *testing.B) {
	const n = 128
	for _, s := range sampleGens {
		b.Run(s.name+"/chain", func(b *testing.B) {
			sb := newSGBench(b, s.gen, n)
			eng := chaineval.New(sb.sys, chaineval.StoreSource{Store: sb.w.Store}, chaineval.Options{})
			sb.w.Store.Counters.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query("sg", sb.w.Query); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sb.w.Store.Counters.Snapshot().Retrieved)/float64(b.N), "tuples/op")
		})
		b.Run(s.name+"/henschen-naqvi", func(b *testing.B) {
			sb := newSGBench(b, s.gen, n)
			src := chaineval.StoreSource{Store: sb.w.Store}
			sb.w.Store.Counters.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hn.Evaluate(sb.shape, src, sb.w.Query, 0)
			}
			b.ReportMetric(float64(sb.w.Store.Counters.Snapshot().Retrieved)/float64(b.N), "tuples/op")
		})
		b.Run(s.name+"/counting", func(b *testing.B) {
			sb := newSGBench(b, s.gen, n)
			src := chaineval.StoreSource{Store: sb.w.Store}
			sb.w.Store.Counters.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counting.Evaluate(sb.shape, src, sb.w.Query, 0)
			}
			b.ReportMetric(float64(sb.w.Store.Counters.Snapshot().Retrieved)/float64(b.N), "tuples/op")
		})
		b.Run(s.name+"/magic", func(b *testing.B) {
			sb := newSGBench(b, s.gen, n)
			prog := parser.MustParse(workload.SGProgram, sb.st).Program
			q := parser.MustParseQuery("sg("+sb.st.Name(sb.w.Query)+", Y)", sb.st)
			sb.w.Store.Counters.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := magic.Evaluate(prog, q, sb.w.Store); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sb.w.Store.Counters.Snapshot().Retrieved)/float64(b.N), "tuples/op")
		})
	}
}

// BenchmarkFig7 regenerates the growth curves: node counts per sample
// across the size sweep.
func BenchmarkFig7(b *testing.B) {
	for _, s := range sampleGens {
		for _, n := range []int{64, 128, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				sb := newSGBench(b, s.gen, n)
				eng := chaineval.New(sb.sys, chaineval.StoreSource{Store: sb.w.Store}, chaineval.Options{})
				var nodes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Query("sg", sb.w.Query)
					if err != nil {
						b.Fatal(err)
					}
					nodes = res.Nodes
				}
				b.ReportMetric(float64(nodes), "graphnodes")
			})
		}
	}
}

// BenchmarkFig8 regenerates the cyclic experiment: m·n iterations to the
// full answer with the termination bound active.
func BenchmarkFig8(b *testing.B) {
	for _, mn := range [][2]int{{3, 4}, {5, 7}, {9, 11}} {
		b.Run(fmt.Sprintf("m=%d,n=%d", mn[0], mn[1]), func(b *testing.B) {
			st := symtab.NewTable()
			w := workload.Cyclic(st, mn[0], mn[1])
			res := parser.MustParse(workload.SGProgram, st)
			sys, err := equations.Transform(res.Program)
			if err != nil {
				b.Fatal(err)
			}
			eng := chaineval.New(sys, chaineval.StoreSource{Store: w.Store}, chaineval.Options{})
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := eng.Query("sg", w.Query)
				if err != nil {
					b.Fatal(err)
				}
				iters = r.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkTheorem3 measures the regular case: one iteration, work linear
// in the chain length.
func BenchmarkTheorem3(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("chain-n=%d", n), func(b *testing.B) {
			st := symtab.NewTable()
			store, src := workload.Chain(st, n)
			res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
			sys, err := equations.Transform(res.Program)
			if err != nil {
				b.Fatal(err)
			}
			eng := chaineval.New(sys, chaineval.StoreSource{Store: store}, chaineval.Options{})
			var nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := eng.Query("tc", src)
				if err != nil {
					b.Fatal(err)
				}
				nodes = r.Nodes
			}
			b.ReportMetric(float64(nodes), "graphnodes")
		})
	}
}

// BenchmarkTheorem4 measures h·n·t behavior on random genealogies.
func BenchmarkTheorem4(b *testing.B) {
	for _, n := range []int{200, 400} {
		b.Run(fmt.Sprintf("tree-n=%d", n), func(b *testing.B) {
			st := symtab.NewTable()
			w := workload.RandomTree(st, n, 0.3, 1)
			res := parser.MustParse(workload.SGProgram, st)
			sys, err := equations.Transform(res.Program)
			if err != nil {
				b.Fatal(err)
			}
			eng := chaineval.New(sys, chaineval.StoreSource{Store: w.Store}, chaineval.Options{})
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := eng.Query("sg", w.Query)
				if err != nil {
					b.Fatal(err)
				}
				iters = r.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkFlight exercises the Section 4 pipeline end to end through the
// public API (E8).
func BenchmarkFlight(b *testing.B) {
	db := NewDB()
	if err := db.LoadProgram(workload.FlightProgram); err != nil {
		b.Fatal(err)
	}
	f := workload.FlightDB(db.SymTab(), 30, 5, 1)
	db.SetStore(f.Store)
	query := fmt.Sprintf("cnx(%s, %s, D, AT)", db.Name(f.Source), db.Name(f.DepTime))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := db.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(ans.Rows)), "answers")
		}
	}
}

// BenchmarkPlanChoice measures the cost-based optimizer's settled
// choice against the engine's historical static default (pinned Chain,
// which on this program runs the binding-directed magic fallback) on
// the Section 4 join case the plan-choice corpus gates: same-carrier
// connectivity over a single-carrier cycle. The free carrier variable
// fails the chain condition and the bound seed reaches every airport,
// so no route restricts anything; runtime feedback re-prices the
// mispredicted routes from their measured retrieval counts and the
// auto plan settles on the measured best (the qsq net since PR 10).
func BenchmarkPlanChoice(b *testing.B) {
	const cycle = 100
	mk := func(b *testing.B) *DB {
		db := NewDB()
		if err := db.LoadProgram(`cnx2(S, D, C) :- flight2(S, D, C).
cnx2(S, D, C) :- flight2(S, H, C), cnx2(H, D, C).`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < cycle; i++ {
			db.Assert("flight2", fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", (i+1)%cycle), "acme")
		}
		return db
	}
	run := func(b *testing.B, p *Prepared) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ans, err := p.Run("a0")
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(ans.Stats.FactsConsulted), "tuples/op")
			}
		}
	}
	b.Run("static-chain-default", func(b *testing.B) {
		p, err := mk(b).Prepare("cnx2(?, D, C)", Options{Strategy: Chain})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run("a0"); err != nil {
			b.Fatal(err)
		}
		run(b, p)
	})
	b.Run("optimizer-feedback", func(b *testing.B) {
		p, err := mk(b).Prepare("cnx2(?, D, C)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 3; i++ { // settle the feedback loop
			if _, err := p.Run("a0"); err != nil {
				b.Fatal(err)
			}
		}
		if got := p.Plan().Strategy; got != Seminaive {
			b.Fatalf("feedback did not settle on seminaive, got %v", got)
		}
		run(b, p)
	})
}

// BenchmarkPrepared measures the prepared-query API: compile once /
// bind many (Prepared.Run cycling through distinct bound constants)
// against cold per-call compilation (Prepare+Run each iteration). The
// /section4 pair demonstrates the acceptance target: amortizing the
// adornment, transformation, equation build and automaton construction
// across calls.
func BenchmarkPrepared(b *testing.B) {
	newFlightDB := func(b *testing.B, airports, perAirport int) (*DB, []string) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram(workload.FlightProgram); err != nil {
			b.Fatal(err)
		}
		f := workload.FlightDB(db.SymTab(), airports, perAirport, 1)
		db.SetStore(f.Store)
		// Distinct bound constants: every flight departure (city, time).
		rel := f.Store.Relation("flight")
		seen := map[string]bool{}
		var consts [][2]string
		for i := 0; i < rel.Len(); i++ {
			t := rel.Tuple(i)
			k := db.Name(t[0]) + "/" + db.Name(t[1])
			if !seen[k] {
				seen[k] = true
				consts = append(consts, [2]string{db.Name(t[0]), db.Name(t[1])})
			}
		}
		flat := make([]string, 0, 2*len(consts))
		for _, c := range consts {
			flat = append(flat, c[0], c[1])
		}
		return db, flat
	}
	// Two data scales: "selective" is the prepared-statement regime (many
	// cheap point queries, compile dominates), "bulk" the regime where
	// the traversal dwarfs compilation.
	for _, size := range []struct {
		name                 string
		airports, perAirport int
	}{
		{"selective", 6, 2},
		{"bulk", 30, 5},
	} {
		b.Run("section4/"+size.name+"/prepared", func(b *testing.B) {
			db, consts := newFlightDB(b, size.airports, size.perAirport)
			p, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
			if err != nil {
				b.Fatal(err)
			}
			n := len(consts) / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % n
				if _, err := p.Run(consts[2*k], consts[2*k+1]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("section4/"+size.name+"/cold", func(b *testing.B) {
			db, consts := newFlightDB(b, size.airports, size.perAirport)
			n := len(consts) / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % n
				p, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Run(consts[2*k], consts[2*k+1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	newSGDB := func(b *testing.B) (*DB, []string) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram(workload.SGProgram); err != nil {
			b.Fatal(err)
		}
		w := workload.SampleC(db.SymTab(), 96)
		db.SetStore(w.Store)
		var names []string
		for i := 0; i < 32; i++ {
			names = append(names, fmt.Sprintf("a%d", i+1))
		}
		return db, names
	}
	b.Run("direct/prepared", func(b *testing.B) {
		db, names := newSGDB(b)
		p, err := db.Prepare("sg(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct/cold", func(b *testing.B) {
		db, names := newSGDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := db.Prepare("sg(?, Y)", Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The zero-allocation streaming warm path: same plan and constants
	// as direct/prepared, answers delivered to a callback instead of a
	// materialized Answer.
	b.Run("direct/stream", func(b *testing.B) {
		db, names := newSGDB(b)
		p, err := db.Prepare("sg(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		syms := make([]symtab.Sym, len(names))
		for i, n := range names {
			syms[i] = db.SymTab().Intern(n)
		}
		n := 0
		yield := func([]symtab.Sym) { n++ }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.RunSymsFunc(yield, syms[i%len(syms)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Concurrent prepared runs: the same plan driven from GOMAXPROCS
	// goroutines, each with its own constant.
	b.Run("direct/parallel", func(b *testing.B) {
		db, names := newSGDB(b)
		p, err := db.Prepare("sg(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := p.Run(names[i%len(names)]); err != nil {
					// b.Fatal must not run on a RunParallel worker.
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}

// BenchmarkAblationDemand contrasts preconstruction (Hunt) with the
// demand-driven engine on data that is mostly irrelevant to the query
// (A1).
func BenchmarkAblationDemand(b *testing.B) {
	build := func() (*symtab.Table, *sgStore) {
		st := symtab.NewTable()
		store, src := workload.Chain(st, 64)
		for i := 0; i < 2000; i++ {
			store.Insert("edge", st.Intern(fmt.Sprintf("j%d", i)), st.Intern(fmt.Sprintf("j%d", i+1)))
		}
		return st, &sgStore{store: store, src: src}
	}
	b.Run("hunt-preconstruct", func(b *testing.B) {
		st, s := build()
		_ = st
		e := expr.MustParse("edge.edge*")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := hunt.Build(e, s.store)
			g.Query(s.src)
		}
	})
	b.Run("chain-demand", func(b *testing.B) {
		st, s := build()
		res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			b.Fatal(err)
		}
		eng := chaineval.New(sys, chaineval.StoreSource{Store: s.store}, chaineval.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query("tc", s.src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type sgStore struct {
	store *edb.Store
	src   symtab.Sym
}

// BenchmarkAblationMemo contrasts node memoization with HN recomputation
// on sample (c) (A2).
func BenchmarkAblationMemo(b *testing.B) {
	const n = 192
	b.Run("chain-memoized", func(b *testing.B) {
		sb := newSGBench(b, workload.SampleC, n)
		eng := chaineval.New(sb.sys, chaineval.StoreSource{Store: sb.w.Store}, chaineval.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query("sg", sb.w.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hn-recompute", func(b *testing.B) {
		sb := newSGBench(b, workload.SampleC, n)
		src := chaineval.StoreSource{Store: sb.w.Store}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hn.Evaluate(sb.shape, src, sb.w.Query, 0)
		}
	})
}

// BenchmarkAblationBindings compares direct binary-chain evaluation with
// the same query forced through the Section 4 transformation (A4): the
// transformation's virtual-relation joins add overhead but preserve the
// demand-driven behavior.
func BenchmarkAblationBindings(b *testing.B) {
	setup := func() *DB {
		db := NewDB()
		if err := db.LoadProgram(workload.SGProgram); err != nil {
			b.Fatal(err)
		}
		w := workload.SampleC(db.SymTab(), 96)
		db.SetStore(w.Store)
		return db
	}
	b.Run("direct", func(b *testing.B) {
		db := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("sg(a1, Y)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("section4", func(b *testing.B) {
		db := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryOpts("sg(a1, Y)", Options{ForceSection4: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatch contrasts the batch API with a loop of individual runs
// on the same plan and bindings. The tc pair shows the shared-traversal
// effect (regular equation: the whole batch is one condensed traversal);
// the sg pair takes the per-distinct-binding route, whose win is
// deduplication and worker fan-out.
func BenchmarkBatch(b *testing.B) {
	newTCDB := func(b *testing.B) (*Prepared, [][]string) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"); err != nil {
			b.Fatal(err)
		}
		store, _ := workload.Chain(db.SymTab(), 256)
		db.SetStore(store)
		p, err := db.Prepare("tc(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		var argSets [][]string
		for _, s := range store.Relation("edge").Domain(0) {
			argSets = append(argSets, []string{db.Name(s)})
		}
		return p, argSets
	}
	b.Run("tc-chain/runbatch", func(b *testing.B) {
		p, argSets := newTCDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RunBatch(argSets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tc-chain/run-loop", func(b *testing.B) {
		p, argSets := newTCDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, args := range argSets {
				if _, err := p.Run(args...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	newSGBatch := func(b *testing.B) (*Prepared, [][]string) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram(workload.SGProgram); err != nil {
			b.Fatal(err)
		}
		w := workload.SampleC(db.SymTab(), 96)
		db.SetStore(w.Store)
		p, err := db.Prepare("sg(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		var argSets [][]string
		for i := 0; i < 32; i++ {
			argSets = append(argSets, []string{fmt.Sprintf("a%d", i+1)})
		}
		return p, argSets
	}
	b.Run("sg/runbatch", func(b *testing.B) {
		p, argSets := newSGBatch(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RunBatch(argSets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sg/run-loop", func(b *testing.B) {
		p, argSets := newSGBatch(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, args := range argSets {
				if _, err := p.Run(args...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkParallel measures Options.Parallelism on the largest
// traversal workload (Figure 7 sample (b), n=256). par=1 is the
// sequential engine; par=4 shards frontier levels across the worker
// pool — on a single-core host the two are expected to be close (the
// sequential fallback keeps small levels inline), with the gap opening
// on multi-core hardware.
func BenchmarkParallel(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("fig7-sampleB-256/par=%d", par), func(b *testing.B) {
			sb := newSGBench(b, workload.SampleB, 256)
			eng := chaineval.New(sb.sys, chaineval.StoreSource{Store: sb.w.Store}, chaineval.Options{Parallelism: par})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query("sg", sb.w.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedAssertThenRun measures the live-update tentpole: the
// cost of Prepared.Run immediately after a single fact mutation. The
// /refresh variant is the two-epoch path — the plan absorbs the change
// by refreshing its relation pointers and the CSR absorbs it as an
// incremental overlay — while /recompile forces the pre-live-update
// behavior (every mutation invalidates the compiled world) by bumping
// the rule epoch, so the Run pays plan recompilation plus a cold
// adjacency rebuild. The acceptance criterion is refresh being >= 5x
// cheaper. The query constant sits near the end of a long chain so the
// traversal itself is a few nodes: the measured gap is the invalidation
// story, not the query.
func BenchmarkPreparedAssertThenRun(b *testing.B) {
	const chain = 4096
	newChainDB := func(b *testing.B) (*DB, *Prepared) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram(`
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`); err != nil {
			b.Fatal(err)
		}
		batch := make([]Fact, 0, chain)
		for i := 0; i < chain; i++ {
			batch = append(batch, Fact{Pred: "e", Args: []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)}})
		}
		db.AssertBatch(batch)
		p, err := db.Prepare("tc(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(fmt.Sprintf("v%d", chain-6)); err != nil {
			b.Fatal(err)
		}
		return db, p
	}
	bound := fmt.Sprintf("v%d", chain-6)
	b.Run("refresh", func(b *testing.B) {
		db, p := newChainDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				db.Assert("e", "m0", "m1")
			} else {
				db.Retract("e", "m0", "m1")
			}
			if _, err := p.Run(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompile", func(b *testing.B) {
		db, p := newChainDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				db.Assert("e", "m0", "m1")
			} else {
				db.Retract("e", "m0", "m1")
			}
			db.Invalidate()
			if _, err := p.Run(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The retract-only churn shape: toggle a mid-chain edge so each
	// mutation changes the answer set, still on the refresh path.
	b.Run("retract-assert", func(b *testing.B) {
		db, p := newChainDB(b)
		cut0, cut1 := fmt.Sprintf("v%d", chain-4), fmt.Sprintf("v%d", chain-3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				db.Retract("e", cut0, cut1)
			} else {
				db.Assert("e", cut0, cut1)
			}
			if _, err := p.Run(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaterializedApply pins the tentpole claim of the live-view
// machinery: absorbing a small delta into a materialized prepared query
// (differential maintenance inside the mutation) must beat re-running
// the prepared query by an order of magnitude. Both legs apply the same
// edge toggles against the same chain; "recompute" re-runs the plan
// after every mutation, "maintained" lets the view absorb the delta.
func BenchmarkMaterializedApply(b *testing.B) {
	// A complete binary tree keeps the reachability cone of a fringe
	// mutation shallow (one root path), so the delta's true cost is
	// O(depth) while a recompute pays for the whole closure.
	const depth = 13 // 2^13-1 = 8191 nodes
	build := func(b *testing.B) (*DB, *Prepared) {
		b.Helper()
		db := NewDB()
		if err := db.LoadProgram(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`); err != nil {
			b.Fatal(err)
		}
		d := &Delta{}
		nodes := 1<<depth - 1
		for i := 1; 2*i+1 <= nodes; i++ {
			d.Assert("edge", fmt.Sprintf("t%d", i), fmt.Sprintf("t%d", 2*i))
			d.Assert("edge", fmt.Sprintf("t%d", i), fmt.Sprintf("t%d", 2*i+1))
		}
		db.Apply(d)
		p, err := db.Prepare("tc(?, Y)", Options{})
		if err != nil {
			b.Fatal(err)
		}
		return db, p
	}
	fringe := fmt.Sprintf("t%d", 1<<depth-1) // deepest rightmost leaf
	toggle := func(db *DB, i int) {
		leaf := fmt.Sprintf("leaf%d", i/2)
		if i%2 == 0 {
			db.Assert("edge", fringe, leaf)
		} else {
			db.Retract("edge", fringe, leaf)
		}
	}
	b.Run("maintained", func(b *testing.B) {
		db, p := build(b)
		m, err := p.Materialize("t1")
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(db, i)
		}
		b.StopTimer()
		if st := m.Stats(); st.Recomputed != 0 {
			b.Fatalf("maintenance fell back to recompute: %+v", st)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		db, p := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(db, i)
			if _, err := p.Run("t1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
