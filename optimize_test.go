package chainlog

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"chainlog/internal/automaton"
	"chainlog/internal/equations"
)

const tcSrc = `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
edge(b, c).
edge(c, d).
edge(d, e).
edge(e, f).
`

// Auto (the Options zero value) routes through the cost-based optimizer:
// the plan records a decision with every rejected alternative (seminaive,
// magic and qsqnet lose to chain here), and run stats report the strategy
// actually executed, never "auto".
func TestAutoStrategyChoosesAndReports(t *testing.T) {
	db := mustDB(t, tcSrc)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	pc := p.Plan()
	if pc.Pinned {
		t.Fatal("Options{} (Auto) must not report a pinned plan")
	}
	if len(pc.Rejected) != 3 {
		t.Fatalf("want 3 rejected alternatives, got %+v", pc.Rejected)
	}
	if pc.Cost <= 0 || pc.Reason == "" {
		t.Fatalf("decision not recorded: %+v", pc)
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Strategy == Auto {
		t.Fatal("run stats must report the effective strategy, not auto")
	}
	if ans.Stats.Strategy != pc.Strategy {
		t.Fatalf("stats strategy %v != plan strategy %v", ans.Stats.Strategy, pc.Strategy)
	}
	if got := len(ans.Rows); got != 5 {
		t.Fatalf("tc(a, Y) rows = %d, want 5", got)
	}
}

// Auto answers must agree with every pinned answer-equivalent strategy.
func TestAutoMatchesPinnedAnswers(t *testing.T) {
	db := mustDB(t, tcSrc)
	auto, err := db.QueryOpts("tc(b, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Chain, Seminaive, Magic, QSQNet} {
		pinned, err := db.QueryOpts("tc(b, Y)", Options{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(auto.Rows, pinned.Rows) {
			t.Fatalf("auto rows %v != %v rows %v", auto.Rows, s, pinned.Rows)
		}
		if pinned.Stats.Strategy != s {
			t.Fatalf("pinned run reported strategy %v, want %v", pinned.Stats.Strategy, s)
		}
	}
}

// A named Options.Strategy is a pin, not a hint: the optimizer must not
// run at all, and both Plan() and explain output must say so.
func TestPinnedStrategyBypassesOptimizer(t *testing.T) {
	db := mustDB(t, tcSrc)
	p, err := db.Prepare("tc(?, Y)", Options{Strategy: Seminaive})
	if err != nil {
		t.Fatal(err)
	}
	pc := p.Plan()
	if !pc.Pinned {
		t.Fatal("explicit Strategy must report Pinned")
	}
	if pc.Strategy != Seminaive {
		t.Fatalf("pinned strategy = %v, want seminaive", pc.Strategy)
	}
	if pc.Cost != 0 || len(pc.Rejected) != 0 {
		t.Fatalf("pinned plan must not carry optimizer output: %+v", pc)
	}
	if !strings.Contains(pc.Reason, "pinned by Options.Strategy (optimizer bypassed)") {
		t.Fatalf("pinned reason wording: %q", pc.Reason)
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Strategy != Seminaive {
		t.Fatalf("pinned run executed %v", ans.Stats.Strategy)
	}

	out, err := db.ExplainOpts("tc(a, Y)", Options{Strategy: Seminaive})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy seminaive pinned by Options.Strategy (optimizer bypassed)") {
		t.Fatalf("ExplainOpts missing pin wording:\n%s", out)
	}

	// A pinned plan never re-optimizes, whatever the churn.
	base := db.Reoptimizations()
	for i := 0; i < 50; i++ {
		db.Assert("edge", fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i+1))
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	if db.Reoptimizations() != base {
		t.Fatal("pinned plan re-optimized")
	}
}

// Options.Strict pins the chain route (all fallbacks are disabled, so
// there is nothing to optimize): the optimizer must not reroute a
// non-chain binding pattern around the strict error, and Plan/Explain
// report the pin.
func TestStrictBypassesOptimizer(t *testing.T) {
	db := mustDB(t, tcSrc)
	p, err := db.Prepare("tc(?, Y)", Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	pc := p.Plan()
	if !pc.Pinned || pc.Strategy != Chain || len(pc.Rejected) != 0 {
		t.Fatalf("strict plan must be a chain pin with no optimizer output: %+v", pc)
	}
	if !strings.Contains(pc.Reason, "required by Options.Strict (optimizer bypassed)") {
		t.Fatalf("strict reason wording: %q", pc.Reason)
	}
	out, err := db.ExplainOpts("tc(a, Y)", Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "chain route required by Options.Strict (optimizer bypassed)") {
		t.Fatalf("ExplainOpts missing strict wording:\n%s", out)
	}
}

// Explain under default options renders the optimizer's decision.
func TestExplainShowsPlanChoice(t *testing.T) {
	db := mustDB(t, tcSrc)
	out, err := db.Explain("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan choice:") || !strings.Contains(out, "chosen: ") {
		t.Fatalf("Explain missing plan choice section:\n%s", out)
	}
	if strings.Count(out, "rejected: ") != 3 {
		t.Fatalf("Explain should list rejected alternatives:\n%s", out)
	}
	if !strings.Contains(out, "adornment: bf") {
		t.Fatalf("Explain should report the query's binding pattern:\n%s", out)
	}
	// No query: program rendering only, no plan section.
	out, err = db.Explain("")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "plan choice:") {
		t.Fatalf("query-less Explain should have no plan section:\n%s", out)
	}
	// Extensional predicate: no decision to show.
	out, err = db.Explain("edge(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "plan choice:") {
		t.Fatalf("extensional Explain should have no plan section:\n%s", out)
	}
}

// A fact burst past the drift floors triggers exactly one
// re-optimization at the next run; further runs without churn do not
// re-optimize, and small churn never triggers at all.
func TestReoptimizeOnDrift(t *testing.T) {
	db := mustDB(t, tcSrc)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	base := db.Reoptimizations()

	// A couple of asserts: below DriftMinTuples, no re-optimization.
	db.Assert("edge", "f", "g")
	db.Assert("edge", "g", "h")
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	if got := db.Reoptimizations(); got != base {
		t.Fatalf("small churn re-optimized: %d -> %d", base, got)
	}

	// A burst well past both floors: exactly one re-optimization on the
	// next run, none on the run after.
	for i := 0; i < 30; i++ {
		db.Assert("edge", fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1))
	}
	transformsBefore := equations.TransformCount()
	compilesBefore := automaton.CompileCount()
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	if got := db.Reoptimizations(); got != base+1 {
		t.Fatalf("burst should re-optimize exactly once: %d -> %d", base, got)
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	if got := db.Reoptimizations(); got != base+1 {
		t.Fatalf("second run after burst re-optimized again: %d", got)
	}
	// Re-optimization reuses compiled plans: the equation transformation
	// and automaton compilation must not have run again.
	if d := equations.TransformCount() - transformsBefore; d != 0 {
		t.Fatalf("re-optimization re-transformed %d times", d)
	}
	if d := automaton.CompileCount() - compilesBefore; d != 0 {
		t.Fatalf("re-optimization re-compiled %d automata", d)
	}
	if pc := p.Plan(); pc.Reoptimizations != 1 {
		t.Fatalf("handle-level reopt count = %d, want 1", pc.Reoptimizations)
	}
}

// Observe feeds runtime measurements into the plan; wildly divergent
// observed work flags the plan and the next fact-epoch refresh
// re-optimizes even without cardinality drift.
func TestObserveFeedbackTriggersReopt(t *testing.T) {
	db := mustDB(t, tcSrc)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	base := db.Reoptimizations()
	// Report observed work far past the estimate (and past the absolute
	// feedback floor). A single fact nudge moves the fact epoch without
	// tripping the drift floors, isolating the feedback path.
	for i := 0; i < 8; i++ {
		p.Observe(0.001, 1<<20)
	}
	db.Assert("edge", "z1", "z2")
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	if got := db.Reoptimizations(); got != base+1 {
		t.Fatalf("feedback should force one re-optimization: %d -> %d", base, got)
	}
	if pc := p.Plan(); pc.ObservedSeconds == 0 {
		t.Fatal("Observe should record the latency average")
	}
}

// A route whose estimate proves badly wrong at run time must be
// abandoned for the measured-cheapest alternative — and must not be
// flipped back to, because its measured cost survives re-optimization.
//
// The shape: same-carrier connectivity over a single-carrier cycle. The
// free head variable C in the in group fails the chain condition, so the
// contest is the binding-directed routes (qsqnet, magic) vs seminaive;
// the model predicts the bound seed restricts the traversal, but on a
// cycle everything is reachable, so both goal-directed routes degenerate
// to the full closure plus their own overhead. Observed work feeds back
// after each mispredicted route runs, every measured route is re-costed
// from its measurement, and the plan settles on the cheapest priced
// route — qsqnet, whose recalibrated cost (observed facts at the qsq
// per-fact rate) undercuts the seminaive model — without ping-ponging,
// because a measured route keeps its measured cost.
func TestFeedbackFlipsToMeasuredBest(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(`cnx2(S, D, C) :- flight2(S, D, C).
cnx2(S, D, C) :- flight2(S, H, C), cnx2(H, D, C).`); err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		db.Assert("flight2", fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", (i+1)%n), "acme")
	}
	p, err := db.Prepare("cnx2(?, D, C)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pc := p.Plan(); pc.Strategy != QSQNet && pc.Strategy != Magic {
		t.Fatalf("the model should start from a binding-directed route on a bound query, got %v", pc.Strategy)
	}
	first, err := p.Run("a0")
	if err != nil {
		t.Fatal(err)
	}
	// Each run observes far more retrievals than its route's estimate;
	// the next run re-optimizes at entry — no fact mutation required —
	// and the contest re-prices from measurements. The optimistic model
	// estimates fall in turn until every surviving price is honest.
	again := first
	var reopts uint64
	for i := 0; i < 4; i++ {
		if pc := p.Plan(); pc.Reoptimizations == reopts && i > 0 {
			break // no re-optimization on the last run: settled
		} else {
			reopts = pc.Reoptimizations
		}
		again, err = p.Run("a0")
		if err != nil {
			t.Fatal(err)
		}
	}
	pc := p.Plan()
	if pc.Strategy != QSQNet {
		t.Fatalf("feedback should settle on the recalibrated qsq net, got %v (reason %q)", pc.Strategy, pc.Reason)
	}
	if pc.Reoptimizations == 0 {
		t.Fatal("the mispredictions must be counted as re-optimizations")
	}
	if !strings.Contains(strings.Join(rejectedDetails(pc), "\n"), "recalibrated from") {
		t.Fatalf("the rejected routes should carry their measured costs: %+v", pc.Rejected)
	}
	if !strings.Contains(pc.Reason, "recalibrated from") {
		t.Fatalf("the settled route must be priced from its measurement, not the optimistic model: %q", pc.Reason)
	}
	if !reflect.DeepEqual(first.Rows, again.Rows) {
		t.Fatal("re-optimization changed the answer")
	}
	// Stable: further runs see estimate ≈ observation and stay put.
	settled := pc.Reoptimizations
	for i := 0; i < 3; i++ {
		if _, err := p.Run("a0"); err != nil {
			t.Fatal(err)
		}
	}
	if pc := p.Plan(); pc.Strategy != QSQNet || pc.Reoptimizations != settled {
		t.Fatalf("plan should settle: %v after %d reoptimizations (settled at %d)", pc.Strategy, pc.Reoptimizations, settled)
	}
}

func rejectedDetails(pc PlanChoice) []string {
	var out []string
	for _, r := range pc.Rejected {
		out = append(out, r.Detail)
	}
	return out
}

// The generic batch route's selectivity ordering must not change
// answers or their order.
func TestBatchSelectivityOrderingPreservesAnswers(t *testing.T) {
	db := mustDB(t, tcSrc)
	for i := 0; i < 20; i++ {
		db.Assert("edge", fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", i+1))
	}
	// A pinned bottom-up strategy forces the generic per-binding fan-out.
	seq, err := db.Prepare("tc(?, Y)", Options{Strategy: Seminaive})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.Prepare("tc(?, Y)", Options{Strategy: Seminaive, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, 0, 12)
	for _, a := range []string{"a", "b", "c", "h0", "h5", "h10", "h19", "d", "e", "f", "h1", "nosuch"} {
		batch = append(batch, []string{a})
	}
	want, err := seq.RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("answer count %d != %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Rows, want[i].Rows) {
			t.Fatalf("binding %d (%v): parallel rows %v != sequential %v", i, batch[i], got[i].Rows, want[i].Rows)
		}
	}
}
