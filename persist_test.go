package chainlog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDumpFactsRoundTrip(t *testing.T) {
	db := mustDB(t, sgSrc)
	var facts, rules bytes.Buffer
	if err := db.DumpFacts(&facts); err != nil {
		t.Fatal(err)
	}
	if err := db.DumpRules(&rules); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	if err := db2.LoadProgram(rules.String()); err != nil {
		t.Fatalf("reload rules: %v\n%s", err, rules.String())
	}
	if err := db2.LoadProgram(facts.String()); err != nil {
		t.Fatalf("reload facts: %v\n%s", err, facts.String())
	}

	want, err := db.Query("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("round trip changed answers: %v vs %v", got.Rows, want.Rows)
	}
	if db.Store().Size() != db2.Store().Size() {
		t.Fatalf("fact counts differ: %d vs %d", db.Store().Size(), db2.Store().Size())
	}
}

func TestDumpQuotesAwkwardConstants(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(`city('New York', 'USA'). city(oslo, norway).`); err != nil {
		t.Fatal(err)
	}
	db.Assert("city", "São Paulo", "brazil")
	db.Assert("city", "Uppercase", "sweden")
	var buf bytes.Buffer
	if err := db.DumpFacts(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "'New York'") || !strings.Contains(out, "'Uppercase'") {
		t.Fatalf("quoting missing:\n%s", out)
	}
	db2 := NewDB()
	if err := db2.LoadProgram(out); err != nil {
		t.Fatalf("reload: %v\n%s", err, out)
	}
	if db2.Store().Size() != db.Store().Size() {
		t.Fatal("quoted round trip lost facts")
	}
}

func TestDBString(t *testing.T) {
	db := mustDB(t, sgSrc)
	s := db.String()
	if !strings.Contains(s, "rules: 2") {
		t.Fatalf("String = %q", s)
	}
}
