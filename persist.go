package chainlog

import (
	"bufio"
	"fmt"
	"io"

	"chainlog/internal/ast"
	"chainlog/internal/symtab"
)

// DumpFacts writes the extensional database as Datalog fact text, one
// fact per line, relations in insertion order. Only live facts are
// written — a retracted fact does not resurface on reload — so the
// output round-trips the DB's current state through LoadProgram.
func (db *DB) DumpFacts(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var werr error
	for _, name := range db.store.Relations() {
		db.store.Relation(name).EachRaw(func(tuple []symtab.Sym) {
			if werr != nil {
				return
			}
			if _, err := bw.WriteString(name); err != nil {
				werr = err
				return
			}
			bw.WriteByte('(')
			for j, s := range tuple {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(ast.C(s).Render(db.st))
			}
			if _, err := bw.WriteString(").\n"); err != nil {
				werr = err
			}
		})
		if werr != nil {
			return werr
		}
	}
	return bw.Flush()
}

// DumpRules writes the intensional database as Datalog rule text. The
// output round-trips through LoadProgram (into a fresh DB).
func (db *DB) DumpRules(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, err := io.WriteString(w, db.prog.Render(db.st))
	return err
}

// Stats summary for human consumption.
func (db *DB) String() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return fmt.Sprintf("chainlog.DB{rules: %d, relations: %d, facts: %d}",
		len(db.prog.Rules), len(db.store.Relations()), db.store.Size())
}
