package chainlog

import (
	"bufio"
	"fmt"
	"io"

	"chainlog/internal/ast"
)

// DumpFacts writes the extensional database as Datalog fact text, one
// fact per line, relations in insertion order. The output round-trips
// through LoadProgram.
func (db *DB) DumpFacts(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	for _, name := range db.store.Relations() {
		r := db.store.Relation(name)
		for i := 0; i < r.Len(); i++ {
			tuple := r.Tuple(i)
			if _, err := bw.WriteString(name); err != nil {
				return err
			}
			bw.WriteByte('(')
			for j, s := range tuple {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(ast.C(s).Render(db.st))
			}
			if _, err := bw.WriteString(").\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DumpRules writes the intensional database as Datalog rule text. The
// output round-trips through LoadProgram (into a fresh DB).
func (db *DB) DumpRules(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, err := io.WriteString(w, db.prog.Render(db.st))
	return err
}

// Stats summary for human consumption.
func (db *DB) String() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return fmt.Sprintf("chainlog.DB{rules: %d, relations: %d, facts: %d}",
		len(db.prog.Rules), len(db.store.Relations()), db.store.Size())
}
