package chainlog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// DumpFacts writes the extensional database as Datalog fact text, one
// fact per line, relations in insertion order. Only live facts are
// written — a retracted fact does not resurface on reload — so the
// output round-trips the DB's current state through LoadProgram.
func (db *DB) DumpFacts(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dumpFactsLocked(w)
}

// dumpFactsLocked renders the fact text; the caller must hold db.mu
// (shared or exclusive).
func (db *DB) dumpFactsLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var werr error
	for _, name := range db.store.Relations() {
		db.store.Relation(name).EachRaw(func(tuple []symtab.Sym) {
			if werr != nil {
				return
			}
			if _, err := bw.WriteString(name); err != nil {
				werr = err
				return
			}
			bw.WriteByte('(')
			for j, s := range tuple {
				if j > 0 {
					bw.WriteByte(',')
				}
				// Stream the name straight into the buffer: Render would
				// build an intermediate string per quoted constant, which
				// dominates dump cost on large stores.
				cname := db.st.Name(s)
				if ast.ConstNeedsQuoting(cname) {
					bw.WriteByte('\'')
					bw.WriteString(cname)
					bw.WriteByte('\'')
				} else {
					bw.WriteString(cname)
				}
			}
			if _, err := bw.WriteString(").\n"); err != nil {
				werr = err
			}
		})
		if werr != nil {
			return werr
		}
	}
	return bw.Flush()
}

// SnapshotFacts writes the fact text and returns the fact epoch the
// content captures, both under one read lock, so the pair is a
// consistent replication snapshot: a replica restoring it and replaying
// log records above the epoch lands exactly on the primary's state. If
// begin is non-nil it is called with the epoch before the first byte is
// written — an HTTP handler uses it to emit the X-Chainlog-Epoch header
// ahead of a streamed body.
func (db *DB) SnapshotFacts(w io.Writer, begin func(epoch uint64)) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if begin != nil {
		begin(db.factEpoch)
	}
	if err := db.dumpFactsLocked(w); err != nil {
		return 0, err
	}
	return db.factEpoch, nil
}

// SaveFacts writes the fact text to path crash-safely: the content goes
// to a temp file in the same directory, is fsynced, and is renamed over
// the destination, with a directory fsync making the rename durable. A
// crash at any point leaves either the old complete file or the new
// complete file — never a truncated one. The format is the same
// human-readable Datalog text DumpFacts emits, so saved files remain a
// usable export/import path.
func (db *DB) SaveFacts(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := db.DumpFacts(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// RestoreFacts replaces the entire extensional database with the fact
// text read from r and sets the fact epoch to epoch — the bootstrap
// half of replication: a node restoring a snapshot taken at epoch E is,
// by construction, at E, and tails the log from there. The text must
// contain only facts; rules belong to the program file every node loads
// at boot. Restoring is a rule-epoch event (compiled plans point into
// the replaced store), so it belongs at bootstrap, not on the serving
// hot path.
func (db *DB) RestoreFacts(r io.Reader, epoch uint64) error {
	src, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	res, err := parser.Parse(string(src), db.st)
	if err != nil {
		return err
	}
	if len(res.Program.Rules) > 0 {
		return fmt.Errorf("chainlog: snapshot contains %d rule(s); facts only", len(res.Program.Rules))
	}
	store := edb.NewStore(db.st)
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = store
	db.bumpRuleEpoch()
	db.factEpoch = epoch
	db.recomputeViewsLocked()
	return nil
}

// DumpRules writes the intensional database as Datalog rule text. The
// output round-trips through LoadProgram (into a fresh DB).
func (db *DB) DumpRules(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, err := io.WriteString(w, db.prog.Render(db.st))
	return err
}

// Stats summary for human consumption.
func (db *DB) String() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return fmt.Sprintf("chainlog.DB{rules: %d, relations: %d, facts: %d}",
		len(db.prog.Rules), len(db.store.Relations()), db.store.Size())
}
