package chainlog

import (
	"context"

	"chainlog/internal/ast"
	"chainlog/internal/qsqnet"
	"chainlog/internal/symtab"
)

// buildQSQNetPlan compiles the goal-directed QSQ-net route: the relevant
// program slice plus the template's adornment compile into a net of
// input/answer tables once, here; each run seeds the root input table
// with its parameter vector and evaluates against the live store. The
// caller must hold db.mu (shared suffices).
func (db *DB) buildQSQNetPlan(tmpl ast.Query) (plan, error) {
	net, err := qsqnet.Compile(db.relevantProgram(tmpl.Pred), tmpl.Pred, tmpl.Adornment())
	if err != nil {
		return nil, err
	}
	pl := &qsqnetPlan{tmpl: tmpl, net: net}
	for _, a := range tmpl.Args {
		if a.IsVar() {
			continue
		}
		if a.IsHole() {
			pl.holePos = append(pl.holePos, len(pl.boundTmpl))
			pl.boundTmpl = append(pl.boundTmpl, symtab.None)
		} else {
			pl.boundTmpl = append(pl.boundTmpl, a.Const)
		}
	}
	return pl, nil
}

// qsqnetPlan evaluates through a compiled QSQ net. The net structure
// depends only on the rules and the binding pattern; facts are read from
// the live store per run, so fact churn needs no plan work at all.
type qsqnetPlan struct {
	tmpl ast.Query
	net  *qsqnet.Net
	// boundTmpl holds the bound-position values in query-literal order,
	// symtab.None at '?' holes; holePos maps successive run parameters to
	// their positions in boundTmpl.
	boundTmpl []symtab.Sym
	holePos   []int
}

// refreshFacts is a no-op: every run evaluates against the live store.
func (pl *qsqnetPlan) refreshFacts(db *DB) {}

func (pl *qsqnetPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	bound := make([]symtab.Sym, len(pl.boundTmpl))
	copy(bound, pl.boundTmpl)
	for k, i := range pl.holePos {
		bound[i] = args[k]
	}
	tuples, qs, err := pl.net.Eval(ctx, db.store, bound)
	if err != nil {
		return nil, err
	}
	rows := pl.project(tuples)
	return db.rowsAnswer(rows, Stats{
		Iterations: qs.Rounds,
		Nodes:      int(qs.Answers),
		Firings:    qs.Firings,
		Converged:  true,
	}), nil
}

// project maps the net's full answer tuples onto the query's free
// variables with bottomup.Answer's semantics: rows violating a repeated
// variable's equality are dropped, each free variable projects at its
// first occurrence, and duplicates collapse. Bound positions were
// already filtered by Eval.
func (pl *qsqnetPlan) project(tuples [][]symtab.Sym) [][]symtab.Sym {
	var freeIdx []int
	for i, a := range pl.tmpl.Args {
		if a.IsVar() {
			freeIdx = append(freeIdx, i)
		}
	}
	varPos := make(map[string]int)
	seen := make(map[string]bool, len(tuples))
	var key []byte
	out := make([][]symtab.Sym, 0, len(tuples))
	for _, tuple := range tuples {
		for k := range varPos {
			delete(varPos, k)
		}
		row := make([]symtab.Sym, 0, len(freeIdx))
		ok := true
		for _, i := range freeIdx {
			v := pl.tmpl.Args[i].Var
			if prev, dup := varPos[v]; dup {
				if tuple[prev] != tuple[i] {
					ok = false
					break
				}
				continue
			}
			varPos[v] = i
			row = append(row, tuple[i])
		}
		if !ok {
			continue
		}
		key = key[:0]
		for _, s := range row {
			v := uint32(s)
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if k := string(key); !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}
